#include "serve/server.h"

#include <algorithm>
#include <stdexcept>

#include "bits/test_set.h"
#include "codec/decode_error.h"
#include "tune/optimizer.h"

namespace nc::serve {

namespace {

constexpr std::chrono::milliseconds kReaderPoll{100};

/// Largest decode output the server will materialize. Geometry beyond this
/// is rejected as kBadPayload before any allocation.
constexpr std::size_t kMaxDecodeSymbols = std::size_t{1} << 28;

std::uint64_t micros_since(std::chrono::steady_clock::time_point t0) {
  const auto d = std::chrono::steady_clock::now() - t0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Peeks the CodecSpec prefix shared by encode and decode payloads; the
/// scheduler batches on it without paying for a full parse.
CodecSpec peek_spec(const std::vector<std::uint8_t>& payload) {
  constexpr std::size_t kSpecBytes = 4 + codec::kNumClasses;
  if (payload.size() < kSpecBytes)
    throw std::runtime_error("payload shorter than its codec spec");
  CodecSpec spec;
  spec.k = 0;
  for (int i = 0; i < 4; ++i)
    spec.k |= static_cast<std::size_t>(payload[i]) << (8 * i);
  for (std::size_t i = 0; i < codec::kNumClasses; ++i)
    spec.lengths[i] = payload[4 + i];
  return spec;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      pool_(config.worker_threads == 0 ? core::ThreadPool::hardware_threads()
                                       : config.worker_threads) {
  if (!config_.store_dir.empty()) {
    if (config_.store_shards >= 2) {
      store::ShardedStoreConfig sc;
      sc.dir = config_.store_dir;
      sc.shards = config_.store_shards;
      sc.parity = config_.store_parity;
      sc.stripe_threshold_bytes = config_.store_stripe_threshold;
      sc.segment_target_bytes = config_.store_segment_bytes;
      sc.compact_garbage_ratio = config_.store_garbage_ratio;
      sc.pool = &pool_;
      sc.scrub_interval =
          std::chrono::milliseconds(config_.store_scrub_interval_ms);
      sharded_store_ = std::make_unique<store::ShardedStore>(sc);
      tier_ = sharded_store_.get();
    } else {
      store::StoreConfig sc;
      sc.dir = config_.store_dir;
      sc.segment_target_bytes = config_.store_segment_bytes;
      sc.compact_garbage_ratio = config_.store_garbage_ratio;
      sc.pool = &pool_;
      store_ = std::make_unique<store::Store>(sc);
      tier_ = store_.get();
    }
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() { stop(); }

void Server::serve(std::unique_ptr<ByteStream> stream) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load()) {
      stream->close();
      return;
    }
    conn = std::make_shared<Connection>(std::move(stream));
    conn->client_id = next_client_id_++;
    connections_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
  metrics_.connections.fetch_add(1, std::memory_order_relaxed);
}

void Server::stop() {
  bool first;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    first = !stopping_.exchange(true);
  }
  if (!first) {
    // A concurrent/second stop: the first caller owns the joins; sleep on
    // the completion CV until it is done.
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stopped_cv_.wait(lock, [this] { return stop_complete_; });
    return;
  }
  queue_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();

  // All batches that will ever run are submitted; wait for them to finish
  // so no pool task touches a connection after we start closing. The wait
  // is bounded by the drain deadline: a batch can be stuck writing a reply
  // to a peer that stopped draining, and force-closing the connections is
  // exactly what unwedges it.
  {
    std::unique_lock<std::mutex> lock(batch_mutex_);
    const bool drained = batches_done_cv_.wait_for(
        lock, config_.stop_drain,
        [this] { return batches_inflight_.load() == 0; });
    if (!drained) {
      lock.unlock();
      std::vector<std::shared_ptr<Connection>> conns;
      {
        std::lock_guard<std::mutex> clock_guard(conn_mutex_);
        conns = connections_;
      }
      for (const auto& conn : conns) {
        conn->dead.store(true);
        conn->stream->close();
      }
      lock.lock();
      batches_done_cv_.wait(lock,
                            [this] { return batches_inflight_.load() == 0; });
    }
  }

  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns = connections_;
    readers.swap(reader_threads_);
  }
  for (const auto& conn : conns) {
    conn->dead.store(true);
    conn->stream->close();
  }
  for (auto& t : readers)
    if (t.joinable()) t.join();

  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_complete_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  FrameReader reader(*conn->stream, config_.limits);
  const core::Clock& clock = core::Clock::or_steady(config_.clock);
  // Progress watchdog state. `last_progress` is the instant the last byte
  // arrived; the window pair measures the inbound rate over ~1 s spans.
  auto last_progress = clock.now();
  auto window_start = last_progress;
  std::uint64_t last_bytes = 0;
  std::uint64_t window_bytes = 0;
  constexpr std::chrono::milliseconds kProgressWindow{1000};
  try {
    while (!conn->dead.load()) {
      FrameReader::Result r = reader.read(kReaderPoll);
      switch (r.status) {
        case FrameReader::Status::kFrame:
          handle_frame(conn, std::move(r.frame));
          break;
        case FrameReader::Status::kProtocolError:
          // One typed error frame per corrupted frame; seq 0 because the
          // corrupted header's seq is untrustworthy.
          metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          send_error(conn, 0, r.error, r.detail);
          break;
        case FrameReader::Status::kTimeout:
          if (stopping_.load()) return;
          break;
        case FrameReader::Status::kEof:
          return;
      }
      const auto now = clock.now();
      const std::uint64_t consumed = reader.bytes_consumed();
      if (consumed != last_bytes) {
        last_bytes = consumed;
        last_progress = now;
      }
      // Idle defense: a peer holding the connection open with nothing
      // inbound and nothing in flight is paying for a reader thread it
      // does not use.
      if (config_.idle_timeout.count() > 0 &&
          conn->inflight.load(std::memory_order_relaxed) == 0 &&
          reader.buffered() == 0 &&
          now - last_progress >= config_.idle_timeout) {
        metrics_.idle_disconnects.fetch_add(1, std::memory_order_relaxed);
        drop_connection(conn, ErrorCode::kSlowClient,
                        "idle timeout: no request activity");
        return;
      }
      // Slowloris defense: once a partial frame is buffered the peer has
      // committed to delivering it; dribbling below the minimum rate keeps
      // this thread hostage byte by byte. Any byte counts as progress
      // (bytes_consumed, not whole frames), so a legitimately slow link
      // above the floor is never cut.
      if (config_.min_progress_bps > 0 && now - window_start >= kProgressWindow) {
        const auto elapsed = now - window_start;
        const std::uint64_t got = consumed - window_bytes;
        const double secs =
            std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
                .count();
        if (reader.buffered() > 0 &&
            static_cast<double>(got) <
                static_cast<double>(config_.min_progress_bps) * secs) {
          metrics_.slow_client_disconnects.fetch_add(
              1, std::memory_order_relaxed);
          drop_connection(conn, ErrorCode::kSlowClient,
                          "inbound progress below " +
                              std::to_string(config_.min_progress_bps) +
                              " bytes/sec");
          return;
        }
        window_start = now;
        window_bytes = consumed;
      }
    }
  } catch (const std::exception&) {
    // Transport fault: the connection is gone; nothing to reply to.
  }
  conn->dead.store(true);
  conn->stream->close();
}

void Server::drop_connection(const std::shared_ptr<Connection>& conn,
                             ErrorCode code, const std::string& detail) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.seq = 0;
  frame.payload = error_payload(code, detail);
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  {
    // Best-effort courtesy frame with a tiny budget: the peer we are
    // dropping is by definition not draining; never wait on it.
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    try {
      (void)conn->stream->write_some(bytes.data(), bytes.size(),
                                     std::chrono::milliseconds{10});
    } catch (const std::exception&) {
    }
  }
  conn->dead.store(true);
  conn->stream->close();
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          Frame frame) {
  metrics_.bytes_in.fetch_add(
      (frame.deadline_ms != 0 ? kFrameHeaderSizeV2 : kFrameHeaderSize) +
          frame.payload.size() + kFrameTrailerSize,
      std::memory_order_relaxed);
  switch (frame.type) {
    case FrameType::kSessionRequest: {
      try {
        (void)parse_session_payload(frame.payload);
      } catch (const std::exception& e) {
        metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, frame.seq, ErrorCode::kBadPayload, e.what());
        return;
      }
      Frame reply;
      reply.type = FrameType::kSessionReply;
      reply.seq = frame.seq;
      reply.payload = session_grant_payload(
          SessionGrant{conn->client_id, config_.inflight_cap});
      send_frame(conn, reply);
      return;
    }
    case FrameType::kStatsRequest: {
      Frame reply;
      reply.type = FrameType::kStatsReply;
      reply.seq = frame.seq;
      reply.payload = stats_payload();
      send_frame(conn, reply);
      return;
    }
    // Signature publish/check are handled inline on the reader thread like
    // Stats: the work is a linear scan of an already-size-bounded payload,
    // far below a 9C encode/decode -- batching would only add latency.
    case FrameType::kSignaturePublishRequest: {
      try {
        (void)parse_signature_publish(frame.payload);  // validate geometry
      } catch (const std::exception& e) {
        metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, frame.seq, ErrorCode::kBadPayload, e.what());
        return;
      }
      const CacheKey key =
          signature_ref_key(frame.payload.data(), frame.payload.size());
      cache_.put(key, frame.payload);
      if (store::ArtifactTier* tier = store_tier(); tier != nullptr)
        store_write_through(store::Key{key.lo, key.hi}, frame.payload);
      metrics_.signature_publishes.fetch_add(1, std::memory_order_relaxed);
      Frame reply;
      reply.type = FrameType::kSignaturePublishReply;
      reply.seq = frame.seq;
      reply.payload = signature_ref_payload(SignatureRef{key.lo, key.hi});
      send_frame(conn, reply);
      return;
    }
    case FrameType::kSignatureCheckRequest: {
      SignatureCheck chk;
      try {
        chk = parse_signature_check(frame.payload);
      } catch (const std::exception& e) {
        metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, frame.seq, ErrorCode::kBadPayload, e.what());
        return;
      }
      // Resolve the published stream through the same tiers as artifacts:
      // L1, then the persistent store (promoting a hit), else unknown.
      const CacheKey key{chk.ref.lo, chk.ref.hi};
      std::vector<std::uint8_t> published;
      bool found = false;
      if (auto hit = cache_.get(key)) {
        published = std::move(*hit);
        found = true;
      } else if (store::ArtifactTier* tier = store_tier(); tier != nullptr) {
        try {
          store::GetResult r = tier->get(store::Key{key.lo, key.hi});
          if (r.status == store::GetStatus::kHit) {
            published = std::move(r.payload);
            cache_.put(key, published);
            found = true;
          } else if (r.status == store::GetStatus::kCorrupt) {
            metrics_.revalidation_failures.fetch_add(
                1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
        }
      }
      if (!found) {
        metrics_.signature_unknown_refs.fetch_add(1,
                                                  std::memory_order_relaxed);
        send_error(conn, frame.seq, ErrorCode::kUnknownSignature,
                   "signature ref " + key.hex() + " not published");
        return;
      }
      try {
        const SignaturePublish pub = parse_signature_publish(published);
        const compact::CheckVerdict verdict = compact::check_signatures(
            pub.expected, chk.observed, pub.outputs_per_cycle);
        metrics_.signature_checks.fetch_add(1, std::memory_order_relaxed);
        if (!verdict.pass)
          metrics_.signature_mismatches.fetch_add(1,
                                                  std::memory_order_relaxed);
        Frame reply;
        reply.type = FrameType::kSignatureCheckReply;
        reply.seq = frame.seq;
        reply.payload = check_verdict_payload(verdict);
        send_frame(conn, reply);
      } catch (const std::exception& e) {
        metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, frame.seq, ErrorCode::kBadPayload, e.what());
      }
      return;
    }
    case FrameType::kEncodeRequest:
    case FrameType::kDecodeRequest:
    case FrameType::kTuneRequest: {
      Request req;
      req.conn = conn;
      req.type = frame.type;
      req.seq = frame.seq;
      req.accepted = std::chrono::steady_clock::now();
      // The deadline budget starts counting at arrival (it is relative:
      // the two ends share no clock). A frame without one inherits the
      // server-wide default, which may be "unlimited".
      const std::uint32_t budget_ms = frame.deadline_ms != 0
                                          ? frame.deadline_ms
                                          : config_.default_deadline_ms;
      if (budget_ms != 0)
        req.deadline = core::Deadline::after(
            std::chrono::milliseconds(budget_ms), config_.clock);
      if (frame.type == FrameType::kTuneRequest) {
        // Tune requests keep the default spec: the scheduler then groups
        // them into one batch (the spec is unused by the tune path, which
        // carries its whole configuration in the payload). Payload
        // validation happens on the worker, like encode/decode bodies.
        metrics_.tune_requests.fetch_add(1, std::memory_order_relaxed);
      } else {
        try {
          req.spec = peek_spec(frame.payload);
        } catch (const std::exception& e) {
          metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
          send_error(conn, frame.seq, ErrorCode::kBadPayload, e.what());
          return;
        }
      }
      req.payload = std::move(frame.payload);

      // Admission, layer 1: per-client in-flight cap.
      const std::uint32_t inflight =
          conn->inflight.load(std::memory_order_relaxed);
      if (inflight >= config_.inflight_cap) {
        metrics_.requests_rejected_inflight.fetch_add(
            1, std::memory_order_relaxed);
        send_error(conn, req.seq, ErrorCode::kInflightLimit,
                   "client has " + std::to_string(inflight) +
                       " requests in flight (cap " +
                       std::to_string(config_.inflight_cap) + ")");
        return;
      }
      // Admission, layer 2: bounded queue depth.
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_.load()) {
          send_error(conn, req.seq, ErrorCode::kShuttingDown,
                     to_string(ErrorCode::kShuttingDown));
          return;
        }
        if (queue_.size() >= config_.queue_capacity) {
          metrics_.requests_rejected_queue.fetch_add(
              1, std::memory_order_relaxed);
          send_error(conn, req.seq, ErrorCode::kOverloaded,
                     "queue at capacity " +
                         std::to_string(config_.queue_capacity));
          return;
        }
        conn->inflight.fetch_add(1, std::memory_order_relaxed);
        metrics_.requests_accepted.fetch_add(1, std::memory_order_relaxed);
        queue_.push_back(std::move(req));
      }
      queue_cv_.notify_one();
      return;
    }
    default:
      send_error(conn, frame.seq, ErrorCode::kBadType,
                 "frame type " +
                     std::to_string(static_cast<unsigned>(frame.type)) +
                     " is not a request");
      return;
  }
}

void Server::scheduler_loop() {
  while (true) {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock,
                   [this] { return stopping_.load() || !queue_.empty(); });
    if (stopping_.load()) break;

    // Linger briefly so compatible requests arriving just behind the first
    // one join its batch instead of forming singleton batches.
    if (queue_.size() < config_.max_batch &&
        config_.batch_window.count() > 0) {
      queue_cv_.wait_for(lock, config_.batch_window, [this] {
        return stopping_.load() || queue_.size() >= config_.max_batch;
      });
      if (stopping_.load()) break;
    }

    const CodecSpec spec = queue_.front().spec;
    std::vector<Request> batch;
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < config_.max_batch;) {
      if (it->spec == spec) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();

    {
      std::lock_guard<std::mutex> block(batch_mutex_);
      batches_inflight_.fetch_add(1);
    }
    pool_.submit([this, b = std::move(batch)]() mutable {
      run_batch(std::move(b));
    });
  }

  // Shutdown drain: every queued request gets a typed reply.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    leftover.swap(queue_);
  }
  for (const Request& req : leftover) {
    send_error(req.conn, req.seq, ErrorCode::kShuttingDown,
               to_string(ErrorCode::kShuttingDown));
    req.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::run_batch(std::vector<Request> batch) {
  const auto t0 = std::chrono::steady_clock::now();
  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  metrics_.batched_requests.fetch_add(batch.size(),
                                      std::memory_order_relaxed);
  try {
    // One coder per batch: the whole group shares its table and K.
    const codec::NineCoded coder =
        batch.front().spec.make_coder(config_.codec_impl);
    for (const Request& req : batch) {
      // Shed before compute: a request that expired while queued gets its
      // typed reply now instead of a result nobody is waiting for.
      if (req.deadline.expired()) {
        metrics_.deadline_shed_queue.fetch_add(1, std::memory_order_relaxed);
        send_error(req.conn, req.seq, ErrorCode::kDeadlineExceeded,
                   "deadline expired before compute");
        finish_request(req);
        continue;
      }
      process_request(coder, req);
    }
  } catch (const std::exception& e) {
    // The spec itself is illegal: fail the whole batch as bad payloads.
    for (const Request& req : batch) {
      metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
      send_error(req.conn, req.seq, ErrorCode::kBadPayload, e.what());
      finish_request(req);
    }
  }
  metrics_.batch_latency.record(micros_since(t0));
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    batches_inflight_.fetch_sub(1);
  }
  batches_done_cv_.notify_all();
}

void Server::process_request(const codec::NineCoded& coder,
                             const Request& req) {
  if (req.type == FrameType::kTuneRequest) {
    process_tune(req);
    return;
  }
  const FrameType reply_type = req.type == FrameType::kEncodeRequest
                                   ? FrameType::kEncodeReply
                                   : FrameType::kDecodeReply;
  try {
    const CacheKey key =
        cache_key(req.type, req.spec, req.payload.data(), req.payload.size());
    const store::Key skey{key.lo, key.hi};
    std::vector<std::uint8_t> out;
    bool resolved = false;
    store::ArtifactTier* tier = store_tier();
    if (auto hit = cache_.get(key)) {
      metrics_.l1_hits.fetch_add(1, std::memory_order_relaxed);
      out = std::move(*hit);
      resolved = true;
    } else if (tier != nullptr) {
      // L2: the persistent store. Any failure here -- corrupt record, I/O
      // error -- degrades to a miss; the request still computes.
      try {
        store::GetResult r = tier->get(skey);
        if (r.status == store::GetStatus::kHit) {
          metrics_.l2_hits.fetch_add(1, std::memory_order_relaxed);
          out = std::move(r.payload);
          cache_.put(key, out);  // promote to L1
          resolved = true;
        } else if (r.status == store::GetStatus::kCorrupt) {
          metrics_.revalidation_failures.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
      }
    }
    if (!resolved) {
      metrics_.misses.fetch_add(1, std::memory_order_relaxed);
      if (req.type == FrameType::kEncodeRequest) {
        const EncodeRequest er = parse_encode_request(req.payload);
        out = trits_payload(coder.encode(er.tests.flatten()));
      } else {
        const DecodeRequest dr = parse_decode_request(req.payload);
        if (dr.width != 0 && dr.patterns > kMaxDecodeSymbols / dr.width)
          throw std::runtime_error("decode geometry too large");
        const std::size_t original = dr.patterns * dr.width;
        // Same budget shape as the decompression fleet: linear in the work
        // a well-formed stream needs, so only runaway streams trip it. The
        // request deadline rides along, cancelling an in-flight decode the
        // moment its client stops waiting.
        core::Watchdog watchdog(64 + 8 * (original + dr.te.size()),
                                req.deadline);
        const codec::DecodeOutcome outcome =
            coder.decode_checked(dr.te, original, &watchdog);
        out = test_set_payload(
            bits::TestSet::unflatten(outcome.data, dr.patterns, dr.width));
      }
      cache_.put(key, out);
      if (tier != nullptr) store_write_through(skey, out);
    }
    // Shed before reply-write: computing may have outlived the deadline
    // (the artifact still landed in the cache for the retry to hit).
    if (req.deadline.expired()) {
      metrics_.deadline_shed_write.fetch_add(1, std::memory_order_relaxed);
      send_error(req.conn, req.seq, ErrorCode::kDeadlineExceeded,
                 "deadline expired before reply write");
      finish_request(req);
      return;
    }
    Frame reply;
    reply.type = reply_type;
    reply.seq = req.seq;
    reply.payload = std::move(out);
    send_frame(req.conn, reply);
  } catch (const codec::DecodeError& e) {
    // A watchdog trip caused by the request's own deadline is not a codec
    // failure -- the stream may be perfectly well-formed.
    if (req.deadline.expired()) {
      metrics_.deadline_shed_decode.fetch_add(1, std::memory_order_relaxed);
      send_error(req.conn, req.seq, ErrorCode::kDeadlineExceeded,
                 "deadline expired mid-decode");
      finish_request(req);
      return;
    }
    metrics_.decode_failures.fetch_add(1, std::memory_order_relaxed);
    send_error(req.conn, req.seq, ErrorCode::kDecodeFailed, e.what());
  } catch (const std::exception& e) {
    metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
    send_error(req.conn, req.seq, ErrorCode::kBadPayload, e.what());
  }
  finish_request(req);
}

void Server::process_tune(const Request& req) {
  try {
    // The whole payload (knobs + TD bytes) is the content address, so
    // "same TestSet, same weights, same seed" is by construction the same
    // artifact -- in L1, in the store across restarts, everywhere.
    const CacheKey key =
        cache_key(req.type, req.spec, req.payload.data(), req.payload.size());
    const store::Key skey{key.lo, key.hi};
    std::vector<std::uint8_t> out;
    bool resolved = false;
    store::ArtifactTier* tier = store_tier();
    if (auto hit = cache_.get(key)) {
      metrics_.l1_hits.fetch_add(1, std::memory_order_relaxed);
      out = std::move(*hit);
      resolved = true;
    } else if (tier != nullptr) {
      try {
        store::GetResult r = tier->get(skey);
        if (r.status == store::GetStatus::kHit) {
          metrics_.l2_hits.fetch_add(1, std::memory_order_relaxed);
          out = std::move(r.payload);
          cache_.put(key, out);
          resolved = true;
        } else if (r.status == store::GetStatus::kCorrupt) {
          metrics_.revalidation_failures.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
      }
    }
    if (!resolved) {
      metrics_.misses.fetch_add(1, std::memory_order_relaxed);
      metrics_.tune_searches.fetch_add(1, std::memory_order_relaxed);
      const TuneRequest tr = parse_tune_request(req.payload);
      tune::TuneConfig cfg;
      cfg.seed = tr.seed;
      cfg.generations = tr.generations;
      cfg.population = tr.population;
      cfg.weights =
          tune::TuneWeights{tr.weight_cr, tr.weight_tat, tr.weight_gates,
                            tr.p};
      cfg.impl = config_.codec_impl;
      // Serial fitness evaluation: this code already runs on a pool
      // worker, and nesting a blocking parallel_map onto the same pool
      // would deadlock a small pool (the task would wait on subtasks
      // queued behind itself). Results are jobs-invariant by contract, so
      // the artifact is identical either way.
      cfg.jobs = 1;
      const tune::TuneResult result = tune::run_tune(tr.tests, cfg);
      TuneReplyData reply;
      reply.genome = result.best;
      reply.score = result.best_report.score;
      reply.cr_percent = result.best_report.cr_percent;
      reply.tat_percent = result.best_report.tat_percent;
      reply.fsm_gates = result.best_report.fsm_gates;
      reply.datapath_gates = result.best_report.datapath_gates;
      reply.evaluations = result.evaluations;
      reply.invalid_genomes = result.invalid_genomes;
      out = to_payload(reply);
      cache_.put(key, out);
      if (tier != nullptr) store_write_through(skey, out);
    }
    if (req.deadline.expired()) {
      metrics_.deadline_shed_write.fetch_add(1, std::memory_order_relaxed);
      send_error(req.conn, req.seq, ErrorCode::kDeadlineExceeded,
                 "deadline expired before reply write");
      finish_request(req);
      return;
    }
    Frame reply;
    reply.type = FrameType::kTuneReply;
    reply.seq = req.seq;
    reply.payload = std::move(out);
    send_frame(req.conn, reply);
  } catch (const std::exception& e) {
    metrics_.bad_payloads.fetch_add(1, std::memory_order_relaxed);
    send_error(req.conn, req.seq, ErrorCode::kBadPayload, e.what());
  }
  finish_request(req);
}

void Server::send_frame(const std::shared_ptr<Connection>& conn,
                        const Frame& frame) {
  if (conn->dead.load()) return;
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->dead.load()) return;
  try {
    if (config_.write_deadline.count() > 0) {
      // Bounded write: a peer that stops draining its socket costs at most
      // the write budget, never a wedged worker thread holding the write
      // mutex hostage.
      const core::Deadline budget =
          core::Deadline::after(config_.write_deadline, config_.clock);
      const std::size_t n =
          write_all_within(*conn->stream, bytes.data(), bytes.size(), budget);
      if (n != bytes.size()) {
        metrics_.write_timeouts.fetch_add(1, std::memory_order_relaxed);
        metrics_.slow_client_disconnects.fetch_add(1,
                                                   std::memory_order_relaxed);
        conn->dead.store(true);
        conn->stream->close();
        return;
      }
    } else {
      conn->stream->write_all(bytes.data(), bytes.size());
    }
    metrics_.bytes_out.fetch_add(bytes.size(), std::memory_order_relaxed);
  } catch (const std::exception&) {
    conn->dead.store(true);
    conn->stream->close();
  }
}

void Server::send_error(const std::shared_ptr<Connection>& conn,
                        std::uint64_t seq, ErrorCode code,
                        const std::string& detail) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.seq = seq;
  frame.payload = error_payload(code, detail);
  send_frame(conn, frame);
}

store::ArtifactTier* Server::store_tier() {
  if (tier_ == nullptr) return nullptr;
  const auto bench = store_resume_at_.load(std::memory_order_relaxed);
  if (bench != 0) {
    if (std::chrono::steady_clock::now().time_since_epoch().count() < bench)
      return nullptr;  // compute-only: the cooldown has not expired
    store_resume_at_.store(0, std::memory_order_relaxed);
  }
  return tier_;
}

void Server::store_write_through(const store::Key& key,
                                 const std::vector<std::uint8_t>& payload) {
  const unsigned attempts = std::max(1u, config_.store_put_attempts);
  const std::chrono::milliseconds cap =
      std::max(config_.store_backoff_cap, config_.store_backoff_initial);
  std::chrono::milliseconds backoff =
      std::max(config_.store_backoff_initial, std::chrono::milliseconds{1});
  // Seeded per-key jitter: workers whose writes failed together (one disk
  // hiccup) spread their retries instead of hammering in lockstep.
  std::uint64_t rng = config_.backoff_jitter_seed ^ key.lo ^ (key.hi << 1);
  core::Clock& clock = core::Clock::or_steady(config_.clock);
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      metrics_.store_put_retries.fetch_add(1, std::memory_order_relaxed);
      // Sleep U[backoff/2, backoff]: "equal jitter", so the floor still
      // grows exponentially and the spread scales with it.
      const auto half = backoff.count() / 2;
      const auto span = backoff.count() - half + 1;
      clock.sleep_for(std::chrono::milliseconds(
          half + static_cast<std::int64_t>(splitmix64(rng) %
                                           static_cast<std::uint64_t>(span))));
      backoff = std::min(backoff * 2, cap);
    }
    try {
      tier_->put(key, payload.data(), payload.size());
      return;
    } catch (const store::StoreError& e) {
      // Out of space will not heal inside our backoff window; retrying
      // just burns latency. Bench immediately.
      if (e.code() == store::StoreErrc::kNoSpace) break;
    } catch (const std::exception&) {
      // Transient I/O (or anything else): worth another attempt.
    }
  }
  // Write-through failed for good: the reply still went out (the artifact
  // lives in L1), but durability is gone. Bench the store so the next
  // requests skip straight to compute instead of stalling in retries.
  metrics_.store_put_failures.fetch_add(1, std::memory_order_relaxed);
  const auto resume = std::chrono::steady_clock::now() + config_.store_cooldown;
  store_resume_at_.store(resume.time_since_epoch().count(),
                         std::memory_order_relaxed);
}

void Server::finish_request(const Request& req) {
  req.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
  metrics_.request_latency.record(micros_since(req.accepted));
}

std::vector<std::uint8_t> Server::stats_payload() const {
  const CacheStats cs = cache_.stats();
  std::string json;
  if (sharded_store_ != nullptr) {
    const store::ShardedStats ss = sharded_store_->stats();
    json = metrics_json(metrics_.snapshot(), &cs, nullptr, &ss).dump(0);
  } else if (store_ != nullptr) {
    const store::StoreStats ss = store_->stats();
    json = metrics_json(metrics_.snapshot(), &cs, &ss).dump(0);
  } else {
    json = metrics_json(metrics_.snapshot(), &cs).dump(0);
  }
  return std::vector<std::uint8_t>(json.begin(), json.end());
}

}  // namespace nc::serve
