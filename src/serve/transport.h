// Byte transports for the compression service.
//
// The frame protocol (frame.h) is transport-agnostic: it reads and writes
// through the ByteStream interface below. Two implementations ship:
//
//  * an in-process duplex byte pipe -- a pair of bounded byte queues, one
//    per direction, used by the tests, the load generator's self-hosted
//    mode and the bench. Deterministic and dependency-free;
//  * Unix-domain sockets -- `ninec serve --socket PATH` binds a listener,
//    `ninec loadgen --socket PATH` connects to it, so the service can be
//    driven across processes on one host.
//
// Both transports are byte-oriented and may deliver arbitrary fragments;
// the frame layer owns message boundaries, CRC validation and resync.
// Reads take a timeout so a connection handler can never block forever on
// a dead peer. Writes come in two shapes: write_all blocks until accepted
// (the pipe's capacity and the socket's buffer provide the only
// transport-level backpressure), and write_some waits at most a timeout for
// room -- the building block of the server's slow-client defense, where a
// peer that stops draining its socket must cost a bounded wait, never a
// wedged writer thread.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/cancel.h"

namespace nc::serve {

/// One end of a duplex byte connection. Thread model: one concurrent reader
/// plus one concurrent writer per end is safe; multiple writers must
/// serialize externally (the server guards each connection's write side
/// with a mutex so responses and error replies interleave whole-frame).
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Reads between 1 and `max` bytes into `buf`, waiting up to `timeout`.
  /// Returns the byte count, 0 on orderly end-of-stream (peer closed), or
  /// std::nullopt when the timeout expired with nothing readable. Throws
  /// std::runtime_error on a transport fault (reset, I/O error).
  virtual std::optional<std::size_t> read_some(
      std::uint8_t* buf, std::size_t max,
      std::chrono::milliseconds timeout) = 0;

  /// Writes all `len` bytes, blocking as needed. Throws std::runtime_error
  /// when the peer is gone (the caller treats the connection as dead).
  virtual void write_all(const std::uint8_t* data, std::size_t len) = 0;

  /// Writes between 1 and `len` bytes, waiting up to `timeout` for the
  /// transport to accept any. Returns the count written, or std::nullopt
  /// when the timeout expired with no room (a peer that is not draining).
  /// Throws std::runtime_error on a transport fault.
  virtual std::optional<std::size_t> write_some(
      const std::uint8_t* data, std::size_t len,
      std::chrono::milliseconds timeout) = 0;

  /// Closes both directions; unblocks any pending read/write on either
  /// side. Idempotent.
  virtual void close() = 0;
};

/// Writes all `len` bytes via repeated write_some, never waiting past
/// `deadline`. Returns the bytes actually written: `len` on success, less
/// when the deadline expired first (the caller decides whether a short
/// write kills the connection). Waits in slices of at most `slice` so a
/// virtual-clock deadline advanced by a test is noticed promptly. Throws
/// std::runtime_error on a transport fault, like write_all.
std::size_t write_all_within(
    ByteStream& stream, const std::uint8_t* data, std::size_t len,
    const core::Deadline& deadline,
    std::chrono::milliseconds slice = std::chrono::milliseconds{50});

/// Creates a connected in-process duplex pipe; first is the "client" end,
/// second the "server" end (the labels are symmetric). `capacity` bounds
/// each direction's buffered bytes; writers block when full.
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
make_pipe(std::size_t capacity = 1 << 20);

/// Connects to a Unix-domain socket at `path` (SOCK_STREAM). Throws
/// std::runtime_error on failure.
std::unique_ptr<ByteStream> connect_unix(const std::string& path);

/// Listening Unix-domain socket. Binds (unlinking a stale socket file
/// first) and listens on construction; the destructor closes and unlinks.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Waits up to `timeout` for an inbound connection; nullptr on timeout.
  /// Throws std::runtime_error on listener failure.
  std::unique_ptr<ByteStream> accept(std::chrono::milliseconds timeout);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace nc::serve
