#include "serve/metrics.h"

#include "serve/cache.h"
#include "store/sharded_store.h"
#include "store/store.h"

namespace nc::serve {

std::uint64_t LatencyHistogram::Snapshot::quantile_micros(
    double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return i == 0 ? 1 : (1ull << i);
  }
  return 1ull << (kBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum_micros = sum_micros_.load(std::memory_order_relaxed);
  return s;
}

double Metrics::Snapshot::rejection_rate() const noexcept {
  const std::uint64_t rejected =
      requests_rejected_queue + requests_rejected_inflight;
  const std::uint64_t offered = requests_accepted + rejected;
  return offered == 0
             ? 0.0
             : static_cast<double>(rejected) / static_cast<double>(offered);
}

Metrics::Snapshot Metrics::snapshot() const noexcept {
  Snapshot s;
  s.requests_accepted = requests_accepted.load(std::memory_order_relaxed);
  s.requests_completed = requests_completed.load(std::memory_order_relaxed);
  s.requests_rejected_queue =
      requests_rejected_queue.load(std::memory_order_relaxed);
  s.requests_rejected_inflight =
      requests_rejected_inflight.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
  s.decode_failures = decode_failures.load(std::memory_order_relaxed);
  s.bad_payloads = bad_payloads.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests.load(std::memory_order_relaxed);
  s.connections = connections.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out.load(std::memory_order_relaxed);
  s.l1_hits = l1_hits.load(std::memory_order_relaxed);
  s.l2_hits = l2_hits.load(std::memory_order_relaxed);
  s.misses = misses.load(std::memory_order_relaxed);
  s.revalidation_failures =
      revalidation_failures.load(std::memory_order_relaxed);
  s.store_put_retries = store_put_retries.load(std::memory_order_relaxed);
  s.store_put_failures = store_put_failures.load(std::memory_order_relaxed);
  s.deadline_shed_queue = deadline_shed_queue.load(std::memory_order_relaxed);
  s.deadline_shed_decode =
      deadline_shed_decode.load(std::memory_order_relaxed);
  s.deadline_shed_write = deadline_shed_write.load(std::memory_order_relaxed);
  s.slow_client_disconnects =
      slow_client_disconnects.load(std::memory_order_relaxed);
  s.idle_disconnects = idle_disconnects.load(std::memory_order_relaxed);
  s.write_timeouts = write_timeouts.load(std::memory_order_relaxed);
  s.signature_publishes = signature_publishes.load(std::memory_order_relaxed);
  s.signature_checks = signature_checks.load(std::memory_order_relaxed);
  s.signature_mismatches =
      signature_mismatches.load(std::memory_order_relaxed);
  s.signature_unknown_refs =
      signature_unknown_refs.load(std::memory_order_relaxed);
  s.tune_requests = tune_requests.load(std::memory_order_relaxed);
  s.tune_searches = tune_searches.load(std::memory_order_relaxed);
  s.request_latency = request_latency.snapshot();
  s.batch_latency = batch_latency.snapshot();
  return s;
}

namespace {

report::Json histogram_json(const LatencyHistogram::Snapshot& h) {
  report::Json j = report::Json::object();
  j["count"] = report::Json(h.count);
  j["mean_us"] = report::Json(h.mean_micros());
  j["p50_us"] = report::Json(h.quantile_micros(0.50));
  j["p90_us"] = report::Json(h.quantile_micros(0.90));
  j["p99_us"] = report::Json(h.quantile_micros(0.99));
  report::Json buckets = report::Json::array();
  // Only the populated prefix matters; trailing zero buckets are noise.
  std::size_t last = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
    if (h.buckets[i] != 0) last = i + 1;
  for (std::size_t i = 0; i < last; ++i)
    buckets.push_back(report::Json(h.buckets[i]));
  j["buckets_pow2_us"] = std::move(buckets);
  return j;
}

}  // namespace

report::Json metrics_json(const Metrics::Snapshot& m, const CacheStats* cache,
                          const nc::store::StoreStats* store,
                          const nc::store::ShardedStats* sharded) {
  report::Json j = report::Json::object();
  j["requests_accepted"] = report::Json(m.requests_accepted);
  j["requests_completed"] = report::Json(m.requests_completed);
  j["rejected_queue_full"] = report::Json(m.requests_rejected_queue);
  j["rejected_inflight_cap"] = report::Json(m.requests_rejected_inflight);
  j["rejection_rate"] = report::Json(m.rejection_rate());
  j["protocol_errors"] = report::Json(m.protocol_errors);
  j["decode_failures"] = report::Json(m.decode_failures);
  j["bad_payloads"] = report::Json(m.bad_payloads);
  j["batches"] = report::Json(m.batches);
  j["batched_requests"] = report::Json(m.batched_requests);
  j["mean_batch_size"] = report::Json(m.mean_batch_size());
  j["connections"] = report::Json(m.connections);
  j["bytes_in"] = report::Json(m.bytes_in);
  j["bytes_out"] = report::Json(m.bytes_out);
  j["l1_hits"] = report::Json(m.l1_hits);
  j["l2_hits"] = report::Json(m.l2_hits);
  j["misses"] = report::Json(m.misses);
  j["revalidation_failures"] = report::Json(m.revalidation_failures);
  j["store_put_retries"] = report::Json(m.store_put_retries);
  j["store_put_failures"] = report::Json(m.store_put_failures);
  {
    report::Json t = report::Json::object();
    t["deadline_shed_queue"] = report::Json(m.deadline_shed_queue);
    t["deadline_shed_decode"] = report::Json(m.deadline_shed_decode);
    t["deadline_shed_write"] = report::Json(m.deadline_shed_write);
    t["slow_client_disconnects"] = report::Json(m.slow_client_disconnects);
    t["idle_disconnects"] = report::Json(m.idle_disconnects);
    t["write_timeouts"] = report::Json(m.write_timeouts);
    j["timing"] = std::move(t);
  }
  {
    report::Json s = report::Json::object();
    s["publishes"] = report::Json(m.signature_publishes);
    s["checks"] = report::Json(m.signature_checks);
    s["mismatches"] = report::Json(m.signature_mismatches);
    s["unknown_refs"] = report::Json(m.signature_unknown_refs);
    j["signatures"] = std::move(s);
  }
  {
    report::Json t = report::Json::object();
    t["requests"] = report::Json(m.tune_requests);
    t["searches"] = report::Json(m.tune_searches);
    j["tune"] = std::move(t);
  }
  j["request_latency"] = histogram_json(m.request_latency);
  j["batch_latency"] = histogram_json(m.batch_latency);
  if (cache != nullptr) {
    report::Json c = report::Json::object();
    c["hits"] = report::Json(cache->hits);
    c["misses"] = report::Json(cache->misses);
    c["hit_rate"] = report::Json(cache->hit_rate());
    c["insertions"] = report::Json(cache->insertions);
    c["evictions"] = report::Json(cache->evictions);
    c["crc_drops"] = report::Json(cache->crc_drops);
    c["bytes_stored"] = report::Json(cache->bytes_stored);
    c["entries"] = report::Json(cache->entries);
    j["cache"] = std::move(c);
  }
  if (store != nullptr) {
    report::Json s = report::Json::object();
    s["records"] = report::Json(store->records);
    s["segments"] = report::Json(store->segments);
    s["live_bytes"] = report::Json(store->live_bytes);
    s["dead_bytes"] = report::Json(store->dead_bytes);
    s["garbage_ratio"] = report::Json(store->garbage_ratio());
    s["manifest_bytes"] = report::Json(store->manifest_bytes);
    s["tombstones"] = report::Json(store->tombstones);
    s["gets"] = report::Json(store->gets);
    s["hits"] = report::Json(store->hits);
    s["misses"] = report::Json(store->misses);
    s["puts"] = report::Json(store->puts);
    s["duplicate_puts"] = report::Json(store->duplicate_puts);
    s["erases"] = report::Json(store->erases);
    s["corrupt_drops"] = report::Json(store->corrupt_drops);
    s["compactions"] = report::Json(store->compactions);
    s["records_moved"] = report::Json(store->records_moved);
    s["bytes_reclaimed"] = report::Json(store->bytes_reclaimed);
    s["recovered"] = report::Json(store->recovered);
    s["replayed_records"] = report::Json(store->replayed_records);
    s["torn_bytes_discarded"] = report::Json(store->torn_bytes_discarded);
    s["dropped_at_open"] = report::Json(store->dropped_at_open);
    j["store"] = std::move(s);
  }
  if (sharded != nullptr) {
    report::Json s = report::Json::object();
    s["gets"] = report::Json(sharded->gets);
    s["hits"] = report::Json(sharded->hits);
    s["misses"] = report::Json(sharded->misses);
    s["puts"] = report::Json(sharded->puts);
    s["erases"] = report::Json(sharded->erases);
    s["inline_puts"] = report::Json(sharded->inline_puts);
    s["striped_puts"] = report::Json(sharded->striped_puts);
    s["degraded_reads"] = report::Json(sharded->degraded_reads);
    s["strips_reconstructed"] = report::Json(sharded->strips_reconstructed);
    s["unrecoverable_reads"] = report::Json(sharded->unrecoverable_reads);
    s["degraded_writes"] = report::Json(sharded->degraded_writes);
    s["failed_writes"] = report::Json(sharded->failed_writes);
    s["shard_errors"] = report::Json(sharded->shard_errors);
    s["breaker_opens"] = report::Json(sharded->breaker_opens);
    s["breaker_probes"] = report::Json(sharded->breaker_probes);
    s["skipped_shard_ops"] = report::Json(sharded->skipped_shard_ops);
    s["scrubs"] = report::Json(sharded->scrubs);
    s["shards_degraded"] = report::Json(sharded->shards_degraded);
    j["sharded_store"] = std::move(s);
  }
  return j;
}

}  // namespace nc::serve
