// Content-addressed artifact cache for the compression service.
//
// A 9C encode artifact is fully determined by its inputs: the test set's
// bytes and the codec configuration (K, codeword lengths). The same holds
// for a decode artifact given (TE bytes, geometry, config). That makes the
// reply payload content-addressable: the cache key is a 128-bit FNV-1a
// digest over a kind tag, the codec spec and the request payload bytes, so
// identical requests -- from any client -- hit the same entry and receive a
// byte-identical reply.
//
// Entries carry a CRC-32 of the stored payload, re-verified on every hit;
// a corrupted entry is dropped and reported as a miss rather than served.
// Eviction is strict LRU bounded by a byte capacity (key + payload bytes
// are charged). All operations are thread-safe; stats are cumulative.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/frame.h"

namespace nc::serve {

/// 128-bit content address. FNV-1a run twice with different offset bases;
/// not cryptographic, but collision-safe at cache scale and dependency-free.
struct CacheKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const CacheKey&) const = default;
  std::string hex() const;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ull));
  }
};

/// Digest of (artifact kind, codec spec, request payload bytes). `kind`
/// separates encode from decode artifacts with identical input bytes.
CacheKey cache_key(FrameType kind, const CodecSpec& spec,
                   const std::uint8_t* payload, std::size_t len);

/// Content address of a published signature stream: digest of the publish
/// payload bytes under the signature kind tag (no codec spec -- signatures
/// are codec-independent). Clients derive the same ref from the same
/// expected stream, making publishes idempotent.
CacheKey signature_ref_key(const std::uint8_t* payload, std::size_t len);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t crc_drops = 0;     // hits invalidated by CRC mismatch
  std::uint64_t bytes_stored = 0;  // current charged bytes
  std::uint64_t entries = 0;       // current entry count

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Thread-safe LRU artifact cache with a byte-capacity bound.
class ArtifactCache {
 public:
  /// `capacity_bytes` bounds the sum of charged entry sizes (key size +
  /// payload size). 0 disables storage: every get is a miss, puts drop.
  explicit ArtifactCache(std::size_t capacity_bytes);

  /// Returns a copy of the stored payload, refreshing recency. A stored
  /// entry whose CRC no longer matches is evicted and counted in
  /// `crc_drops`; the caller sees a miss.
  std::optional<std::vector<std::uint8_t>> get(const CacheKey& key);

  /// Inserts (or refreshes) the payload for `key`, evicting LRU entries
  /// until the capacity bound holds. A payload larger than the whole
  /// capacity is not stored.
  void put(const CacheKey& key, const std::vector<std::uint8_t>& payload);

  CacheStats stats() const;
  std::size_t capacity_bytes() const noexcept { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    std::vector<std::uint8_t> payload;
    std::uint32_t crc = 0;
    std::size_t charged = 0;
  };

  std::size_t charge(const Entry& e) const noexcept {
    return sizeof(CacheKey) + e.payload.size();
  }
  void evict_lru_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_;
  CacheStats stats_;
};

}  // namespace nc::serve
