#include "serve/frame.h"

#include <algorithm>
#include <array>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "bits/serialize.h"
#include "codec/codeword_table.h"

namespace nc::serve {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

std::uint32_t read_le32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

/// Payloads reuse the stream formats of bits/serialize.h; these two bridge
/// between byte vectors and the iostream interfaces.
std::vector<std::uint8_t> to_bytes(const std::ostringstream& out) {
  const std::string s = out.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

class PayloadStream {
 public:
  explicit PayloadStream(const std::vector<std::uint8_t>& payload)
      : in_(std::string(payload.begin(), payload.end())) {}

  std::istream& stream() { return in_; }

  std::uint32_t u32() {
    std::array<char, 4> buf;
    in_.read(buf.data(), buf.size());
    if (!in_) throw std::runtime_error("payload truncated");
    return read_le32(reinterpret_cast<const std::uint8_t*>(buf.data()));
  }
  std::uint64_t u64() {
    std::array<char, 8> buf;
    in_.read(buf.data(), buf.size());
    if (!in_) throw std::runtime_error("payload truncated");
    return read_le64(reinterpret_cast<const std::uint8_t*>(buf.data()));
  }
  std::uint8_t u8() {
    const int c = in_.get();
    if (c == EOF) throw std::runtime_error("payload truncated");
    return static_cast<std::uint8_t>(c);
  }
  std::string rest() {
    std::ostringstream out;
    out << in_.rdbuf();
    return out.str();
  }
  void expect_end() {
    if (in_.peek() != EOF)
      throw std::runtime_error("payload has trailing bytes");
  }

 private:
  std::istringstream in_;
};

CodecSpec read_spec(PayloadStream& in) {
  CodecSpec spec;
  spec.k = in.u32();
  for (auto& len : spec.lengths) len = in.u8();
  return spec;
}

void write_spec(std::ostringstream& out, const CodecSpec& spec) {
  std::vector<std::uint8_t> bytes;
  put_le32(bytes, static_cast<std::uint32_t>(spec.k));
  for (const unsigned len : spec.lengths)
    bytes.push_back(static_cast<std::uint8_t>(len));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadMagic: return "bad frame magic";
    case ErrorCode::kBadVersion: return "unsupported protocol version";
    case ErrorCode::kBadCrc: return "frame CRC mismatch";
    case ErrorCode::kOversized: return "declared payload length over limit";
    case ErrorCode::kTruncated: return "stream ended mid-frame";
    case ErrorCode::kResyncOverrun: return "resync scan budget exhausted";
    case ErrorCode::kBadHeader: return "frame header CRC mismatch";
    case ErrorCode::kBadType: return "unexpected frame type";
    case ErrorCode::kBadPayload: return "malformed request payload";
    case ErrorCode::kOverloaded: return "server overloaded (queue full)";
    case ErrorCode::kInflightLimit: return "client in-flight cap reached";
    case ErrorCode::kDecodeFailed: return "decode failed";
    case ErrorCode::kShuttingDown: return "server shutting down";
    case ErrorCode::kDeadlineExceeded: return "request deadline exceeded";
    case ErrorCode::kSlowClient: return "connection below minimum progress";
    case ErrorCode::kUnknownSignature: return "unknown signature reference";
  }
  return "unknown error";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  // A frame without a deadline stays version 1, byte-identical to the
  // pre-deadline protocol; only frames that carry one pay the 4 bytes.
  const bool v2 = frame.deadline_ms != 0;
  const std::size_t header_size = v2 ? kFrameHeaderSizeV2 : kFrameHeaderSize;
  std::vector<std::uint8_t> out;
  out.reserve(header_size + frame.payload.size() + kFrameTrailerSize);
  out.insert(out.end(), kFrameMagic.begin(), kFrameMagic.end());
  out.push_back(
      static_cast<std::uint8_t>(v2 ? kFrameVersionDeadline : kFrameVersion));
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.push_back(0);  // header CRC, patched below
  out.push_back(0);
  put_le64(out, frame.seq);
  put_le32(out, static_cast<std::uint32_t>(frame.payload.size()));
  if (v2) put_le32(out, frame.deadline_ms);
  const std::uint32_t hcrc =
      crc32(out.data() + kFrameMagic.size(),
            header_size - kFrameMagic.size());
  out[6] = static_cast<std::uint8_t>(hcrc & 0xFF);
  out[7] = static_cast<std::uint8_t>((hcrc >> 8) & 0xFF);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  const std::uint32_t crc =
      crc32(out.data() + kFrameMagic.size(), out.size() - kFrameMagic.size());
  put_le32(out, crc);
  return out;
}

void write_frame(ByteStream& stream, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  stream.write_all(bytes.data(), bytes.size());
}

FrameReader::FrameReader(ByteStream& stream, FrameLimits limits)
    : stream_(stream), limits_(limits) {
  if (limits_.watchdog_steps == 0)
    limits_.watchdog_steps =
        4 * (kFrameHeaderSize + limits_.max_payload + kFrameTrailerSize);
}

void FrameReader::consume(std::size_t n) {
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(n));
}

/// One parse attempt over the current buffer. Returns a Result when a frame
/// or error is ready; otherwise sets `need_more` and returns kTimeout as a
/// "nothing yet" placeholder the caller never surfaces.
FrameReader::Result FrameReader::parse_step(core::Watchdog& watchdog,
                                            bool& need_more) {
  Result r;
  while (true) {
    if (buffer_.size() < kFrameMagic.size()) {
      need_more = true;
      r.status = Status::kTimeout;
      return r;
    }
    // Locate the frame anchor. The common case -- buffer starts with the
    // magic -- is a four-byte compare; only junk is ever scanned.
    std::size_t anchor = 0;
    if (!std::equal(kFrameMagic.begin(), kFrameMagic.end(), buffer_.begin())) {
      const auto it = std::search(buffer_.begin() + 1, buffer_.end(),
                                  kFrameMagic.begin(), kFrameMagic.end());
      anchor = static_cast<std::size_t>(it - buffer_.begin());
      const std::size_t scanned =
          std::min(anchor, buffer_.size());
      if (watchdog.tick(scanned) != core::WatchdogTrip::kNone) {
        buffer_.clear();
        resyncing_ = false;
        r.status = Status::kProtocolError;
        r.error = ErrorCode::kResyncOverrun;
        r.detail = "resync scan exceeded its step budget";
        return r;
      }
      if (it == buffer_.end()) {
        // No anchor: drop the junk but keep a possible partial magic tail.
        const std::size_t keep =
            std::min(buffer_.size(), kFrameMagic.size() - 1);
        const std::size_t dropped = buffer_.size() - keep;
        if (dropped > 0) consume(dropped);
        if (!resyncing_ && dropped > 0) {
          resyncing_ = true;
          r.status = Status::kProtocolError;
          r.error = ErrorCode::kBadMagic;
          r.detail = "skipped " + std::to_string(dropped) +
                     " bytes hunting for a frame";
          return r;
        }
        need_more = true;
        r.status = Status::kTimeout;
        return r;
      }
      consume(anchor);
      if (!resyncing_) {
        resyncing_ = true;
        r.status = Status::kProtocolError;
        r.error = ErrorCode::kBadMagic;
        r.detail = "skipped " + std::to_string(anchor) +
                   " bytes hunting for a frame";
        return r;
      }
      // Resyncing: the junk belonged to an already-reported bad frame.
    }
    // Buffer starts with the magic: one error report per bad frame from
    // here on, and the next failure is a fresh one.
    resyncing_ = false;
    if (buffer_.size() < kFrameHeaderSize) {
      need_more = true;
      r.status = Status::kTimeout;
      return r;
    }
    const unsigned version = buffer_[4];
    if (version != kFrameVersion && version != kFrameVersionDeadline) {
      consume(1);
      resyncing_ = true;
      r.status = Status::kProtocolError;
      r.error = ErrorCode::kBadVersion;
      r.detail = "frame version " + std::to_string(version);
      return r;
    }
    const std::size_t header_size =
        version == kFrameVersionDeadline ? kFrameHeaderSizeV2
                                         : kFrameHeaderSize;
    if (buffer_.size() < header_size) {
      need_more = true;
      r.status = Status::kTimeout;
      return r;
    }
    // Header CRC before the length is trusted: a flipped length field must
    // not send the reader waiting for payload bytes that will never come.
    {
      std::array<std::uint8_t, kFrameHeaderSizeV2> header{};
      std::copy(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(header_size),
                header.begin());
      const std::uint16_t want_hcrc =
          static_cast<std::uint16_t>(header[6] | (header[7] << 8));
      header[6] = 0;
      header[7] = 0;
      const std::uint16_t got_hcrc = static_cast<std::uint16_t>(
          crc32(header.data() + kFrameMagic.size(),
                header_size - kFrameMagic.size()) &
          0xFFFF);
      if (want_hcrc != got_hcrc) {
        consume(1);
        resyncing_ = true;
        r.status = Status::kProtocolError;
        r.error = ErrorCode::kBadHeader;
        r.detail = "frame header CRC mismatch";
        return r;
      }
    }
    const std::uint32_t length = read_le32(buffer_.data() + 16);
    if (length > limits_.max_payload) {
      // Rejected before any payload is buffered: a forged length cannot
      // make the reader allocate.
      consume(1);
      resyncing_ = true;
      r.status = Status::kProtocolError;
      r.error = ErrorCode::kOversized;
      r.detail = "declared payload of " + std::to_string(length) +
                 " bytes (limit " + std::to_string(limits_.max_payload) + ")";
      return r;
    }
    const std::size_t total = header_size + length + kFrameTrailerSize;
    if (buffer_.size() < total) {
      need_more = true;
      r.status = Status::kTimeout;
      return r;
    }
    const std::size_t crc_region = header_size + length;
    const std::uint32_t want = read_le32(buffer_.data() + crc_region);
    const std::uint32_t got = crc32(buffer_.data() + kFrameMagic.size(),
                                    crc_region - kFrameMagic.size());
    if (watchdog.tick(length + header_size) != core::WatchdogTrip::kNone) {
      buffer_.clear();
      r.status = Status::kProtocolError;
      r.error = ErrorCode::kResyncOverrun;
      r.detail = "frame parse exceeded its step budget";
      return r;
    }
    if (want != got) {
      consume(1);
      resyncing_ = true;
      r.status = Status::kProtocolError;
      r.error = ErrorCode::kBadCrc;
      r.detail = "frame CRC mismatch";
      return r;
    }
    r.status = Status::kFrame;
    r.frame.type = static_cast<FrameType>(buffer_[5]);
    r.frame.seq = read_le64(buffer_.data() + 8);
    r.frame.deadline_ms = version == kFrameVersionDeadline
                              ? read_le32(buffer_.data() + 20)
                              : 0;
    r.frame.payload.assign(buffer_.begin() +
                               static_cast<std::ptrdiff_t>(header_size),
                           buffer_.begin() +
                               static_cast<std::ptrdiff_t>(crc_region));
    consume(total);
    return r;
  }
}

FrameReader::Result FrameReader::read(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  core::Watchdog watchdog(limits_.watchdog_steps);
  while (true) {
    bool need_more = false;
    Result r = parse_step(watchdog, need_more);
    if (!need_more) return r;

    if (eof_) {
      if (buffer_.empty()) {
        Result end;
        end.status = Status::kEof;
        return end;
      }
      // Partial frame (or junk) at end of stream.
      const bool already_reported = resyncing_;
      buffer_.clear();
      resyncing_ = false;
      if (already_reported) continue;  // reports kEof next iteration
      Result trunc;
      trunc.status = Status::kProtocolError;
      trunc.error = ErrorCode::kTruncated;
      trunc.detail = "stream ended mid-frame";
      return trunc;
    }

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      Result t;
      t.status = Status::kTimeout;
      return t;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::array<std::uint8_t, kReadChunk> chunk;
    const auto n = stream_.read_some(
        chunk.data(), chunk.size(),
        std::max(remaining, std::chrono::milliseconds(1)));
    if (!n.has_value()) {
      Result t;
      t.status = Status::kTimeout;
      return t;
    }
    if (*n == 0) {
      eof_ = true;
      continue;
    }
    bytes_consumed_ += *n;
    buffer_.insert(buffer_.end(), chunk.begin(), chunk.begin() + *n);
  }
}

// ------------------------------------------------------- message payloads

codec::NineCoded CodecSpec::make_coder(codec::CodecImpl impl) const {
  return codec::NineCoded(k, codec::CodewordTable::from_lengths(lengths),
                          impl);
}

std::vector<std::uint8_t> to_payload(const EncodeRequest& req) {
  std::ostringstream out;
  write_spec(out, req.spec);
  bits::save_test_set(out, req.tests);
  return to_bytes(out);
}

EncodeRequest parse_encode_request(const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  EncodeRequest req;
  req.spec = read_spec(in);
  req.tests = bits::load_test_set(in.stream());
  in.expect_end();
  return req;
}

std::vector<std::uint8_t> to_payload(const DecodeRequest& req) {
  std::ostringstream out;
  write_spec(out, req.spec);
  std::vector<std::uint8_t> geo;
  put_le64(geo, req.patterns);
  put_le64(geo, req.width);
  out.write(reinterpret_cast<const char*>(geo.data()),
            static_cast<std::streamsize>(geo.size()));
  bits::save_trits(out, req.te);
  return to_bytes(out);
}

DecodeRequest parse_decode_request(const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  DecodeRequest req;
  req.spec = read_spec(in);
  req.patterns = static_cast<std::size_t>(in.u64());
  req.width = static_cast<std::size_t>(in.u64());
  req.te = bits::load_trits(in.stream());
  in.expect_end();
  return req;
}

std::vector<std::uint8_t> trits_payload(const bits::TritVector& v) {
  std::ostringstream out;
  bits::save_trits(out, v);
  return to_bytes(out);
}

bits::TritVector parse_trits_payload(
    const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  bits::TritVector v = bits::load_trits(in.stream());
  in.expect_end();
  return v;
}

std::vector<std::uint8_t> test_set_payload(const bits::TestSet& ts) {
  std::ostringstream out;
  bits::save_test_set(out, ts);
  return to_bytes(out);
}

bits::TestSet parse_test_set_payload(
    const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  bits::TestSet ts = bits::load_test_set(in.stream());
  in.expect_end();
  return ts;
}

std::vector<std::uint8_t> session_payload(const std::string& name) {
  std::vector<std::uint8_t> out;
  put_le32(out, static_cast<std::uint32_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
  return out;
}

std::string parse_session_payload(const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  const std::uint32_t len = in.u32();
  std::string name = in.rest();
  if (name.size() != len) throw std::runtime_error("bad session name length");
  return name;
}

std::vector<std::uint8_t> session_grant_payload(const SessionGrant& grant) {
  std::vector<std::uint8_t> out;
  put_le64(out, grant.client_id);
  put_le32(out, grant.inflight_cap);
  return out;
}

SessionGrant parse_session_grant(const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  SessionGrant grant;
  grant.client_id = in.u64();
  grant.inflight_cap = in.u32();
  in.expect_end();
  return grant;
}

std::vector<std::uint8_t> to_payload(const SignaturePublish& pub) {
  if (pub.expected.size() !=
      static_cast<std::uint64_t>(pub.outputs_per_cycle) * pub.cycles)
    throw std::invalid_argument("signature publish: geometry mismatch");
  std::ostringstream out;
  std::vector<std::uint8_t> head;
  put_le32(head, pub.outputs_per_cycle);
  put_le64(head, pub.cycles);
  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  bits::save_trits(out, pub.expected);
  return to_bytes(out);
}

SignaturePublish parse_signature_publish(
    const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  SignaturePublish pub;
  pub.outputs_per_cycle = in.u32();
  pub.cycles = in.u64();
  pub.expected = bits::load_trits(in.stream());
  in.expect_end();
  if (pub.outputs_per_cycle == 0)
    throw std::runtime_error("signature publish: zero outputs per cycle");
  if (pub.expected.size() !=
      static_cast<std::uint64_t>(pub.outputs_per_cycle) * pub.cycles)
    throw std::runtime_error("signature publish: geometry mismatch");
  return pub;
}

std::vector<std::uint8_t> signature_ref_payload(const SignatureRef& ref) {
  std::vector<std::uint8_t> out;
  put_le64(out, ref.lo);
  put_le64(out, ref.hi);
  return out;
}

SignatureRef parse_signature_ref(const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  SignatureRef ref;
  ref.lo = in.u64();
  ref.hi = in.u64();
  in.expect_end();
  return ref;
}

std::vector<std::uint8_t> to_payload(const SignatureCheck& chk) {
  std::ostringstream out;
  std::vector<std::uint8_t> head;
  put_le64(head, chk.ref.lo);
  put_le64(head, chk.ref.hi);
  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  bits::save_trits(out, chk.observed);
  return to_bytes(out);
}

SignatureCheck parse_signature_check(const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  SignatureCheck chk;
  chk.ref.lo = in.u64();
  chk.ref.hi = in.u64();
  chk.observed = bits::load_trits(in.stream());
  in.expect_end();
  return chk;
}

std::vector<std::uint8_t> check_verdict_payload(
    const compact::CheckVerdict& verdict) {
  std::vector<std::uint8_t> out;
  out.push_back(verdict.pass ? 1 : 0);
  put_le64(out, verdict.cycles);
  put_le64(out, verdict.mismatched_cycles);
  put_le64(out, verdict.mismatched_outputs);
  put_le64(out, verdict.unknown_outputs);
  put_le64(out, verdict.first_mismatch_cycle);
  return out;
}

compact::CheckVerdict parse_check_verdict(
    const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  compact::CheckVerdict v;
  const std::uint8_t pass = in.u8();
  if (pass > 1) throw std::runtime_error("check verdict: bad pass flag");
  v.pass = pass == 1;
  v.cycles = in.u64();
  v.mismatched_cycles = in.u64();
  v.mismatched_outputs = in.u64();
  v.unknown_outputs = in.u64();
  v.first_mismatch_cycle = in.u64();
  in.expect_end();
  return v;
}

std::vector<std::uint8_t> to_payload(const TuneRequest& req) {
  std::ostringstream out;
  std::vector<std::uint8_t> head;
  put_le64(head, req.seed);
  put_le32(head, req.generations);
  put_le32(head, req.population);
  // Exact double bit patterns: this payload is the artifact key, so the
  // serialization must be canonical, not printf-rounded.
  put_le64(head, std::bit_cast<std::uint64_t>(req.weight_cr));
  put_le64(head, std::bit_cast<std::uint64_t>(req.weight_tat));
  put_le64(head, std::bit_cast<std::uint64_t>(req.weight_gates));
  put_le32(head, req.p);
  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  bits::save_test_set(out, req.tests);
  return to_bytes(out);
}

TuneRequest parse_tune_request(const std::vector<std::uint8_t>& payload) {
  PayloadStream in(payload);
  TuneRequest req;
  req.seed = in.u64();
  req.generations = in.u32();
  req.population = in.u32();
  req.weight_cr = std::bit_cast<double>(in.u64());
  req.weight_tat = std::bit_cast<double>(in.u64());
  req.weight_gates = std::bit_cast<double>(in.u64());
  req.p = in.u32();
  req.tests = bits::load_test_set(in.stream());
  in.expect_end();
  // Budget validation: a request is a compute grant; cap it.
  if (req.generations == 0 || req.generations > kMaxTuneGenerations)
    throw std::runtime_error("tune request: generations out of range");
  if (req.population < 2 || req.population > kMaxTunePopulation)
    throw std::runtime_error("tune request: population out of range");
  if (req.p == 0 || req.p > 1024)
    throw std::runtime_error("tune request: clock ratio out of range");
  const auto finite = [](double v) { return v == v && v - v == 0.0; };
  if (!finite(req.weight_cr) || !finite(req.weight_tat) ||
      !finite(req.weight_gates))
    throw std::runtime_error("tune request: non-finite weight");
  if (req.tests.flatten().size() == 0)
    throw std::runtime_error("tune request: empty test set");
  return req;
}

std::vector<std::uint8_t> to_payload(const TuneReplyData& reply) {
  std::vector<std::uint8_t> out;
  reply.genome.append_bytes(out);
  put_le64(out, std::bit_cast<std::uint64_t>(reply.score));
  put_le64(out, std::bit_cast<std::uint64_t>(reply.cr_percent));
  put_le64(out, std::bit_cast<std::uint64_t>(reply.tat_percent));
  put_le64(out, reply.fsm_gates);
  put_le64(out, reply.datapath_gates);
  put_le64(out, reply.evaluations);
  put_le64(out, reply.invalid_genomes);
  return out;
}

TuneReplyData parse_tune_reply(const std::vector<std::uint8_t>& payload) {
  std::size_t off = 0;
  TuneReplyData reply;
  try {
    reply.genome = tune::TuneGenome::from_bytes(payload, off);
  } catch (const tune::GenomeParseError& e) {
    throw std::runtime_error(e.what());
  }
  if (payload.size() - off != 7 * 8)
    throw std::runtime_error("tune reply: bad length");
  const auto u64_at = [&](int i) {
    return read_le64(payload.data() + off + 8 * i);
  };
  reply.score = std::bit_cast<double>(u64_at(0));
  reply.cr_percent = std::bit_cast<double>(u64_at(1));
  reply.tat_percent = std::bit_cast<double>(u64_at(2));
  reply.fsm_gates = u64_at(3);
  reply.datapath_gates = u64_at(4);
  reply.evaluations = u64_at(5);
  reply.invalid_genomes = u64_at(6);
  return reply;
}

std::vector<std::uint8_t> error_payload(ErrorCode code,
                                        const std::string& detail) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint16_t>(code) &
                                          0xFF));
  out.push_back(static_cast<std::uint8_t>(
      (static_cast<std::uint16_t>(code) >> 8) & 0xFF));
  out.insert(out.end(), detail.begin(), detail.end());
  return out;
}

ParsedError parse_error_payload(const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 2) throw std::runtime_error("error payload truncated");
  ParsedError e;
  e.code = static_cast<ErrorCode>(
      static_cast<std::uint16_t>(payload[0]) |
      (static_cast<std::uint16_t>(payload[1]) << 8));
  e.detail.assign(payload.begin() + 2, payload.end());
  return e;
}

}  // namespace nc::serve
