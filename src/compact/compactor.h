// Combinational X-tolerant response compactor.
//
// One capture cycle presents n response trits (POs then PPOs, the order of
// sim::extract_response); the compactor XORs the subsets selected by an
// XCode into m output trits under 3-valued logic: an X on any folded input
// makes that output X. Two evaluation paths share the semantics:
//
//  * TritVector in / TritVector out -- one cycle (or a whole session
//    stream) at a time, used by the serve signature path and the CLI;
//  * Val64 in / Val64 out -- 64 patterns per pass in the dual-rail
//    encoding of sim::ParallelSim, used by the ResponseAnalyzer's fault
//    loop.
//
// `check_signatures` is the single verdict routine both the local analyzer
// and the serve signature-check handler call, so a server-side check is
// byte-identical to a local one by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bits/trit_vector.h"
#include "compact/xcode.h"
#include "sim/logic_sim.h"

namespace nc::compact {

class Compactor {
 public:
  explicit Compactor(XCode code);

  const XCode& code() const noexcept { return code_; }

  /// Compacts one cycle: `response.size()` must equal code().inputs().
  bits::TritVector compact(const bits::TritVector& response) const;

  /// Compacts a row-major stream of `cycles` responses into a stream of
  /// m-trit signatures. `responses.size()` must be cycles * inputs().
  bits::TritVector compact_stream(const bits::TritVector& responses,
                                  std::size_t cycles) const;

  /// Dual-rail path: folds `in` (inputs() entries, 64 patterns each) into
  /// `out` (outputs() entries). X in any folded slot stays X.
  void compact64(const sim::Val64* in, sim::Val64* out) const;

 private:
  XCode code_;
  /// row_cols_[r] = input columns folded into output r (flattened).
  std::vector<std::vector<std::size_t>> row_cols_;
};

/// Outcome of comparing an observed signature stream against the expected
/// one, cycle by cycle. A position is a provable mismatch when expected and
/// observed both carry a care value and the values differ; an X on either
/// side is uncomparable and counted as unknown.
struct CheckVerdict {
  bool pass = true;  // no provable mismatch anywhere
  std::uint64_t cycles = 0;
  std::uint64_t mismatched_cycles = 0;   // cycles with >= 1 mismatch
  std::uint64_t mismatched_outputs = 0;  // total mismatching positions
  std::uint64_t unknown_outputs = 0;     // positions with an X on a side
  std::uint64_t first_mismatch_cycle = kNoMismatch;

  static constexpr std::uint64_t kNoMismatch = ~0ull;
  bool operator==(const CheckVerdict&) const = default;
};

/// Compares two equal-length signature streams of `outputs_per_cycle`-trit
/// cycles. Throws std::invalid_argument on a size mismatch or a length not
/// divisible by the cycle width.
CheckVerdict check_signatures(const bits::TritVector& expected,
                              const bits::TritVector& observed,
                              std::size_t outputs_per_cycle);

}  // namespace nc::compact
