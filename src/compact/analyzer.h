// ResponseAnalyzer: per-fault detect/mask verdicts under X-compaction.
//
// Given a netlist, an applied test set and a fault list, the analyzer
// simulates the good machine and every faulty machine (64 patterns per
// dual-rail pass, faults fanned out over a thread pool) and scores each
// fault three ways:
//
//  * uncompacted -- a tester comparing all n raw response bits per cycle
//    (the coverage baseline);
//  * X-compacted -- the same tester reading only the m outputs of the
//    configured X-code compactor;
//  * MISR        -- a classic signature register, which has no X story: a
//    single X poisons the whole signature and forfeits every verdict.
//
// Unknowns come from two sources and are treated identically: X bits the
// stimulus leaves in the response, and an environment overlay injected at
// `x_density`. The overlay is a threshold hash of (seed, pattern, bit), so
// the X set at a lower density is a SUBSET of the set at a higher one --
// coverage degradation across a density sweep is monotone by construction,
// not statistically.
//
// Detection is provable-difference semantics throughout (both machines
// specified and opposite, the fault simulator's diff_mask rule). The
// analyzer also self-checks the X-code's tolerance claim: a masked fault
// that had a single-bit provable diff in a cycle whose X count (good and
// faulty unknowns combined) is within the code's tolerance t would
// contradict (1, t)-separability and is counted as a tolerance_violation
// -- tests and bench_compact gate that count at zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bits/test_set.h"
#include "bits/trit_vector.h"
#include "circuit/netlist.h"
#include "compact/compactor.h"
#include "compact/xcode.h"
#include "sim/fault.h"

namespace nc::compact {

/// Deterministic environment-X overlay: true iff response bit `pos` of
/// pattern `pattern` reads as unknown at `density`. Threshold hash -- the
/// same (seed, pattern, pos) stays X at every higher density (nesting).
bool overlay_is_x(std::uint64_t seed, std::uint64_t pattern, std::uint64_t pos,
                  double density) noexcept;

struct AnalyzerConfig {
  /// Fraction of response bits read as unknown by the environment overlay.
  double x_density = 0.0;
  /// Overlay position seed. Keep fixed across a density sweep so the X
  /// sets nest.
  std::uint64_t x_seed = 1;
  /// Fault-parallel worker threads (0 = hardware concurrency).
  std::size_t jobs = 1;
  /// Score a MISR of `misr_width` bits side by side.
  bool with_misr = true;
  unsigned misr_width = 16;
};

enum class FaultVerdict : std::uint8_t {
  kUndetected = 0,        // not even the uncompacted tester sees it
  kDetected = 1,          // seen through the compactor
  kMaskedByCompaction = 2,  // uncompacted sees it, compacted does not
};

struct AnalyzerReport {
  std::size_t faults = 0;
  std::size_t patterns = 0;
  std::size_t response_width = 0;   // n: raw bits per cycle
  std::size_t compact_outputs = 0;  // m: compacted bits per cycle
  unsigned tolerance = 0;           // the code's verified t

  std::size_t detected_uncompacted = 0;
  std::size_t detected_compacted = 0;
  std::size_t masked_by_compaction = 0;
  /// Masked faults with a single-bit diff in a within-tolerance cycle --
  /// impossible for a correct (1, t)-separable code; must be 0.
  std::size_t tolerance_violations = 0;

  // Expected-response X accounting (tester-visible unknowns per cycle).
  std::size_t cycles_over_tolerance = 0;
  std::size_t max_cycle_x = 0;
  std::uint64_t total_x = 0;

  bool misr_enabled = false;
  bool misr_good_poisoned = false;  // an X reached the reference signature
  std::size_t misr_detected = 0;
  std::size_t misr_no_verdict = 0;  // good or faulty signature poisoned

  std::vector<FaultVerdict> verdicts;  // parallel to the input fault list

  std::uint64_t raw_bits = 0;        // n * patterns
  std::uint64_t compacted_bits = 0;  // m * patterns

  double compaction_ratio() const noexcept {
    return compacted_bits == 0
               ? 0.0
               : static_cast<double>(raw_bits) /
                     static_cast<double>(compacted_bits);
  }
  double coverage_uncompacted_percent() const noexcept {
    return faults == 0 ? 0.0
                       : 100.0 * static_cast<double>(detected_uncompacted) /
                             static_cast<double>(faults);
  }
  double coverage_compacted_percent() const noexcept {
    return faults == 0 ? 0.0
                       : 100.0 * static_cast<double>(detected_compacted) /
                             static_cast<double>(faults);
  }
  double coverage_loss_percent() const noexcept {
    return coverage_uncompacted_percent() - coverage_compacted_percent();
  }
  double misr_coverage_percent() const noexcept {
    return faults == 0 ? 0.0
                       : 100.0 * static_cast<double>(misr_detected) /
                             static_cast<double>(faults);
  }
};

class ResponseAnalyzer {
 public:
  /// `code.inputs()` must equal `netlist.response_width()`.
  ResponseAnalyzer(const circuit::Netlist& netlist, XCode code,
                   AnalyzerConfig config = {});

  const Compactor& compactor() const noexcept { return compactor_; }
  const AnalyzerConfig& config() const noexcept { return config_; }

  /// Scores every fault of `faults` against `patterns` (pattern width must
  /// match the netlist).
  AnalyzerReport analyze(const bits::TestSet& patterns,
                         const std::vector<sim::Fault>& faults) const;

  /// Good-machine responses with the overlay applied: patterns * n trits,
  /// pattern-major. This is what the tester expects to read back raw.
  bits::TritVector expected_responses(const bits::TestSet& patterns) const;

  /// Compacted expected responses: patterns * m trits. The reference
  /// stream a serve signature-check publishes.
  bits::TritVector expected_signatures(const bits::TestSet& patterns) const;

  /// What a physical device under `fault` (nullptr = fault-free) would
  /// upload: unknowable bits take a deterministic pseudo-random value
  /// seeded by `fill_seed` before compaction, so the stream is binary.
  bits::TritVector observed_signatures(const bits::TestSet& patterns,
                                       const sim::Fault* fault,
                                       std::uint64_t fill_seed) const;

 private:
  const circuit::Netlist* netlist_;
  Compactor compactor_;
  AnalyzerConfig config_;
};

}  // namespace nc::compact
