#include "compact/xcode.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace nc::compact {

namespace {

std::size_t mask_words(std::size_t rows) { return (rows + 63) / 64; }

/// True iff column `c` keeps at least one row outside `blocked`.
bool covered(const std::vector<std::uint64_t>& c,
             const std::vector<std::uint64_t>& blocked) {
  for (std::size_t w = 0; w < c.size(); ++w)
    if ((c[w] & ~blocked[w]) != 0) return true;
  return false;
}

void or_into(std::vector<std::uint64_t>& acc,
             const std::vector<std::uint64_t>& v) {
  for (std::size_t w = 0; w < v.size(); ++w) acc[w] |= v[w];
}

/// Enumerates every union of at most `budget` columns drawn from
/// `columns[start..)` (skipping index `skip`) on top of `blocked`; returns
/// false as soon as one such union covers all rows of `target`.
bool separable_rec(const std::vector<std::uint64_t>& target,
                   const std::vector<std::vector<std::uint64_t>>& columns,
                   std::vector<std::uint64_t>& blocked, std::size_t start,
                   std::size_t skip, unsigned budget) {
  if (!covered(target, blocked)) return false;
  if (budget == 0) return true;
  for (std::size_t i = start; i < columns.size(); ++i) {
    if (i == skip) continue;
    std::vector<std::uint64_t> next = blocked;
    or_into(next, columns[i]);
    if (!separable_rec(target, columns, next, i + 1, skip, budget - 1))
      return false;
  }
  return true;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(XCodeKind kind) noexcept {
  switch (kind) {
    case XCodeKind::kIdentity: return "identity";
    case XCodeKind::kSteiner: return "steiner";
    case XCodeKind::kGreedy: return "greedy";
  }
  return "?";
}

XCode::XCode(XCodeKind kind, std::size_t rows,
             std::vector<std::vector<std::uint64_t>> columns,
             unsigned tolerance)
    : kind_(kind), rows_(rows), columns_(std::move(columns)),
      tolerance_(tolerance) {}

XCode XCode::identity(std::size_t n) {
  if (n == 0) throw std::invalid_argument("X-code needs at least one input");
  std::vector<std::vector<std::uint64_t>> cols(
      n, std::vector<std::uint64_t>(mask_words(n), 0));
  for (std::size_t c = 0; c < n; ++c) cols[c][c / 64] = 1ull << (c % 64);
  // No two columns share a row, so no amount of X on other lines can block
  // a column's single row: tolerance is bounded only by n itself.
  const unsigned t =
      n - 1 > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<unsigned>(n - 1);
  return XCode(XCodeKind::kIdentity, n, std::move(cols), t);
}

XCode XCode::steiner(std::size_t n, std::size_t m) {
  if (n == 0) throw std::invalid_argument("X-code needs at least one input");
  const std::size_t lo = m == 0 ? 3 : m;
  const std::size_t hi = m == 0 ? std::max<std::size_t>(3, 4 * n + 7) : m;
  for (std::size_t rows = lo; rows <= hi; ++rows) {
    // Lexicographic greedy packing of row triples: accept {a,b,c} when none
    // of its three row pairs appears in an accepted triple. Any two
    // accepted columns then intersect in at most one row.
    std::vector<char> pair_used(rows * rows, 0);
    std::vector<std::vector<std::uint64_t>> cols;
    cols.reserve(n);
    for (std::size_t a = 0; a + 2 < rows && cols.size() < n; ++a)
      for (std::size_t b = a + 1; b + 1 < rows && cols.size() < n; ++b) {
        if (pair_used[a * rows + b]) continue;
        for (std::size_t c = b + 1; c < rows && cols.size() < n; ++c) {
          if (pair_used[a * rows + c] || pair_used[b * rows + c]) continue;
          pair_used[a * rows + b] = pair_used[a * rows + c] =
              pair_used[b * rows + c] = 1;
          std::vector<std::uint64_t> col(mask_words(rows), 0);
          col[a / 64] |= 1ull << (a % 64);
          col[b / 64] |= 1ull << (b % 64);
          col[c / 64] |= 1ull << (c % 64);
          cols.push_back(std::move(col));
          break;  // the (a, b) pair is spent
        }
      }
    if (cols.size() == n)
      // Weight 3, pairwise intersection <= 1: two X columns erase at most
      // two of any column's three rows, so t = 2 holds by construction.
      return XCode(XCodeKind::kSteiner, rows, std::move(cols), 2);
  }
  throw std::invalid_argument(
      "steiner X-code: " + std::to_string(m) + " rows cannot host " +
      std::to_string(n) + " weight-3 columns (need ~m*(m-1)/6 >= n)");
}

XCode XCode::greedy(std::size_t n, std::size_t m, unsigned tolerance,
                    unsigned weight, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("X-code needs at least one input");
  if (weight == 0 || weight > m)
    throw std::invalid_argument("greedy X-code: column weight must be 1..m");
  if (tolerance > 3)
    throw std::invalid_argument(
        "greedy X-code: exhaustive check supports tolerance <= 3");
  std::uint64_t rng = seed * 0x6C62272E07BB0141ull + 0x100000001B3ull;
  std::vector<std::vector<std::uint64_t>> cols;
  cols.reserve(n);
  const std::size_t words = mask_words(m);
  constexpr std::size_t kTriesPerColumn = 2000;
  while (cols.size() < n) {
    bool placed = false;
    for (std::size_t attempt = 0; attempt < kTriesPerColumn; ++attempt) {
      // Draw `weight` distinct rows.
      std::vector<std::uint64_t> col(words, 0);
      unsigned set = 0;
      while (set < weight) {
        const std::size_t r = splitmix64(rng) % m;
        const std::uint64_t bit = 1ull << (r % 64);
        if (col[r / 64] & bit) continue;
        col[r / 64] |= bit;
        ++set;
      }
      // Incremental (1, t)-separability: only sets involving the candidate
      // need checking, the rest held before. (i) the candidate against
      // every union of <= t accepted columns; (ii) every accepted column
      // against unions containing the candidate and <= t-1 others.
      std::vector<std::uint64_t> blocked(words, 0);
      if (!separable_rec(col, cols, blocked, 0, cols.size(), tolerance))
        continue;
      bool ok = true;
      if (tolerance > 0) {
        for (std::size_t c = 0; c < cols.size() && ok; ++c) {
          std::vector<std::uint64_t> base = col;  // candidate in the X set
          ok = separable_rec(cols[c], cols, base, 0, c, tolerance - 1);
        }
      }
      if (!ok) continue;
      cols.push_back(std::move(col));
      placed = true;
      break;
    }
    if (!placed)
      throw std::invalid_argument(
          "greedy X-code: search stuck at " + std::to_string(cols.size()) +
          "/" + std::to_string(n) + " columns (m=" + std::to_string(m) +
          ", t=" + std::to_string(tolerance) +
          ", w=" + std::to_string(weight) + "); grow m");
  }
  return XCode(XCodeKind::kGreedy, m, std::move(cols), tolerance);
}

XCode XCode::build(const XCodeSpec& spec) {
  switch (spec.kind) {
    case XCodeKind::kIdentity:
      if (spec.outputs != 0 && spec.outputs != spec.inputs)
        throw std::invalid_argument(
            "identity X-code: outputs must equal inputs");
      return identity(spec.inputs);
    case XCodeKind::kSteiner:
      return steiner(spec.inputs, spec.outputs);
    case XCodeKind::kGreedy: {
      if (spec.outputs != 0)
        return greedy(spec.inputs, spec.outputs, spec.tolerance, spec.weight,
                      spec.seed);
      // Auto-size: start near the smallest plausible m and widen until the
      // verified search completes. m may exceed n -- for tiny n with
      // weight > 1 it must (three weight-3 columns cannot share 3 rows);
      // more rows only ever make separability easier. The cap turns a
      // genuinely impossible spec into the search's error instead of an
      // endless loop.
      std::size_t m =
          std::max<std::size_t>({spec.weight, spec.tolerance + 1, 8});
      const std::size_t cap = 64 * spec.inputs + 256;
      for (;; m += m / 2 + 1) {
        try {
          return greedy(spec.inputs, std::min(m, cap), spec.tolerance,
                        spec.weight, spec.seed);
        } catch (const std::invalid_argument&) {
          if (m >= cap) throw;
        }
      }
    }
  }
  throw std::invalid_argument("unknown X-code kind");
}

unsigned XCode::column_weight(std::size_t c) const {
  unsigned count = 0;
  for (std::uint64_t w : columns_.at(c))
    count += static_cast<unsigned>(__builtin_popcountll(w));
  return count;
}

bool XCode::bit(std::size_t row, std::size_t col) const {
  if (row >= rows_) throw std::out_of_range("X-code row out of range");
  return (columns_.at(col)[row / 64] >> (row % 64)) & 1ull;
}

std::vector<std::size_t> XCode::row_columns(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("X-code row out of range");
  std::vector<std::size_t> cols;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    if ((columns_[c][r / 64] >> (r % 64)) & 1ull) cols.push_back(c);
  return cols;
}

bool XCode::verify_tolerance(const XCode& code, unsigned x) {
  const std::size_t words = mask_words(code.rows_);
  for (std::size_t c = 0; c < code.columns_.size(); ++c) {
    std::vector<std::uint64_t> blocked(words, 0);
    if (!separable_rec(code.columns_[c], code.columns_, blocked, 0, c, x))
      return false;
  }
  return true;
}

unsigned XCode::max_tolerance(const XCode& code, unsigned limit) {
  unsigned best = 0;
  for (unsigned x = 1; x <= limit; ++x) {
    if (!verify_tolerance(code, x)) break;
    best = x;
  }
  return best;
}

std::string XCode::describe() const {
  std::ostringstream out;
  out << to_string(kind_) << " " << outputs() << "x" << inputs()
      << " t=" << tolerance_;
  return out.str();
}

}  // namespace nc::compact
