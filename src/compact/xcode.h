// X-codes: binary parity matrices for X-tolerant response compaction.
//
// An X-code is an m x n binary matrix H. Each of the n scan-out bits of a
// capture cycle feeds the XOR trees selected by its column; the compactor
// emits m parity bits per cycle instead of n raw bits. Because the XOR is
// evaluated in 3-valued logic, an unknown (X) response bit poisons every
// output whose column includes it -- tolerance to X is therefore a purely
// combinatorial property of H.
//
// The property we construct for is (1, t)-separability (Fujiwara &
// Colbourn, "A Combinatorial Approach to X-Tolerant Compaction Circuits"):
// for every column c and every set S of at most t other columns, some row
// covers c and no member of S. Then a single-bit error on line c is
// observed on at least one non-X output whenever the cycle carries at most
// t unknowns -- no single-bit fault effect is ever masked by t or fewer X.
//
// Three constructions:
//  * identity      -- pass-through (m = n), tolerance bounded only by n;
//                     the uncompacted baseline expressed as an X-code.
//  * steiner       -- constant-weight-3 columns whose pairwise row
//                     intersection is at most one (a partial Steiner triple
//                     packing). Two X columns can kill at most two of a
//                     column's three rows, so t = 2 by construction.
//  * greedy        -- seeded random search for weight-w columns, accepting
//                     a candidate only if the (1, t)-separability of the
//                     grown set survives an exhaustive check (small t).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nc::compact {

enum class XCodeKind : std::uint8_t {
  kIdentity = 0,
  kSteiner = 1,
  kGreedy = 2,
};

const char* to_string(XCodeKind kind) noexcept;

/// Parameters naming a construction (CLI- and test-facing).
struct XCodeSpec {
  XCodeKind kind = XCodeKind::kSteiner;
  /// Response bits per cycle (the code's n). Fixed by the circuit.
  std::size_t inputs = 0;
  /// Compacted outputs per cycle (the code's m); 0 = smallest m the
  /// construction supports for `inputs`.
  std::size_t outputs = 0;
  /// Column weight for the greedy search (ignored by the others).
  unsigned weight = 3;
  /// Tolerance target t the greedy search verifies while growing.
  unsigned tolerance = 2;
  std::uint64_t seed = 1;
};

class XCode {
 public:
  /// Pass-through: m = n, column c covers row c only.
  static XCode identity(std::size_t n);

  /// Constant-weight-3 columns over m rows, pairwise intersecting in at
  /// most one row; guarantees t = 2. `m == 0` picks the smallest feasible
  /// row count. Throws std::invalid_argument when m cannot host n such
  /// columns (needs roughly m*(m-1)/6 >= n).
  static XCode steiner(std::size_t n, std::size_t m = 0);

  /// Seeded random growth of weight-`weight` columns over m rows; every
  /// candidate is admitted only if the set stays (1, t)-separable, checked
  /// exhaustively against the already-accepted columns. Deterministic per
  /// seed. Throws std::invalid_argument when the search cannot place n
  /// columns (m too small for the requested n/t/weight).
  static XCode greedy(std::size_t n, std::size_t m, unsigned tolerance,
                      unsigned weight = 3, std::uint64_t seed = 1);

  /// Builds from a spec (`spec.inputs` must be set).
  static XCode build(const XCodeSpec& spec);

  std::size_t inputs() const noexcept { return columns_.size(); }
  std::size_t outputs() const noexcept { return rows_; }
  XCodeKind kind() const noexcept { return kind_; }

  /// Verified X-tolerance t: per-cycle X counts up to t cannot mask a
  /// single-bit error (see verify_tolerance). For identity this is n.
  unsigned tolerance() const noexcept { return tolerance_; }

  /// Number of rows set in column c.
  unsigned column_weight(std::size_t c) const;

  bool bit(std::size_t row, std::size_t col) const;

  /// Column c as a row bitmask, word w covering rows [64w, 64w+63].
  const std::vector<std::uint64_t>& column_mask(std::size_t c) const {
    return columns_[c];
  }

  /// Sorted input columns folded into output row r.
  std::vector<std::size_t> row_columns(std::size_t r) const;

  /// Exhaustive (1, x)-separability check: for every column c and every
  /// set S of at most x other columns, some row covers c and no member of
  /// S. Cost grows as n^(x+1); intended for x <= 3 at test sizes.
  static bool verify_tolerance(const XCode& code, unsigned x);

  /// Largest x <= limit for which verify_tolerance holds.
  static unsigned max_tolerance(const XCode& code, unsigned limit);

  std::string describe() const;

 private:
  XCode(XCodeKind kind, std::size_t rows,
        std::vector<std::vector<std::uint64_t>> columns, unsigned tolerance);

  XCodeKind kind_ = XCodeKind::kIdentity;
  std::size_t rows_ = 0;
  /// columns_[c] = bitmask over rows, ceil(rows/64) words each.
  std::vector<std::vector<std::uint64_t>> columns_;
  unsigned tolerance_ = 0;
};

}  // namespace nc::compact
