// Closed-loop tester round trip: both directions of the pin-count budget.
//
// The paper compresses the stimulus side; this driver closes the loop the
// way a reduced-pin-count tester does:
//
//   TD (ATPG cubes or a parsed test set)
//     -> 9C encode                      (compressed stimulus, |TE| bits in)
//     -> 9C decode                      (the decompressor's legal fill of TD)
//     -> scan simulation                (good machine + every fault)
//     -> X-code compaction              (m of n response bits out per cycle)
//     -> per-fault verdicts             (ResponseAnalyzer)
//
// The decoded stimulus is exactly what the on-chip decompressor applies:
// compatible 9C halves collapse to constants, so it is a fill of TD (every
// care bit preserved, fewer X) -- fault coverage is measured on what the
// hardware really shifts in, not on the pre-compression cubes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bits/test_set.h"
#include "circuit/netlist.h"
#include "codec/nine_coded.h"
#include "compact/analyzer.h"
#include "compact/xcode.h"
#include "sim/fault.h"

namespace nc::compact {

struct RoundtripConfig {
  /// 9C block size K for the stimulus side.
  std::size_t block_size = 8;
  codec::CodecImpl codec_impl = codec::CodecImpl::kAuto;
  /// Response-side X-code; `inputs` is filled in from the circuit.
  XCodeSpec xcode;
  AnalyzerConfig analyzer;
};

struct RoundtripResult {
  // Stimulus side.
  std::size_t patterns = 0;
  std::size_t pattern_width = 0;
  std::uint64_t td_bits = 0;  // |TD|
  std::uint64_t te_bits = 0;  // |TE|
  double compression_percent = 0.0;

  // Response side.
  XCodeKind xcode_kind = XCodeKind::kIdentity;
  AnalyzerReport report;
};

/// Runs the full loop: encodes `td`, decodes it back (throws
/// codec::DecodeError on a corrupt stream -- impossible here by
/// construction, but the decode is the real validating one), simulates the
/// decoded stimulus against `faults` and scores the compacted responses.
RoundtripResult run_roundtrip(const circuit::Netlist& netlist,
                              const bits::TestSet& td,
                              const std::vector<sim::Fault>& faults,
                              const RoundtripConfig& config = {});

}  // namespace nc::compact
