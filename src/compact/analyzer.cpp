#include "compact/analyzer.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "core/parallel.h"
#include "core/thread_pool.h"
#include "sim/logic_sim.h"
#include "sim/misr.h"

namespace nc::compact {

using bits::Trit;
using bits::TritVector;
using sim::ParallelSim;
using sim::Val64;

namespace {

std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t position_hash(std::uint64_t seed, std::uint64_t pattern,
                            std::uint64_t pos) noexcept {
  return mix64(seed ^ (pattern * 0x9E3779B97F4A7C15ull) ^
               (pos * 0xC2B2AE3D27D4EB4Full));
}

/// Deterministic fill for unknowable device bits (observed_signatures).
bool fill_bit(std::uint64_t seed, std::uint64_t pattern,
              std::uint64_t pos) noexcept {
  return position_hash(seed ^ 0x5DEECE66Dull, pattern, pos) & 1ull;
}

/// Good- or faulty-machine responses of one 64-pattern pass, with the
/// environment overlay applied and slots past `loaded` forced to X.
struct BatchResponses {
  std::size_t first = 0;
  std::size_t loaded = 0;
  std::uint64_t load_mask = 0;
  std::vector<Val64> raw;                 // n entries
  std::vector<std::uint64_t> overlay;     // per raw pos: environment-X bits
  std::vector<Val64> sig;                 // m entries (good batches only)
};

void extract_raw(const circuit::Netlist& netlist, const ParallelSim& sim,
                 std::vector<Val64>& raw) {
  raw.clear();
  for (std::size_t o : netlist.outputs()) raw.push_back(sim.value(o));
  for (std::size_t f = 0; f < netlist.flops().size(); ++f)
    raw.push_back(sim.captured(f));
}

void apply_masks(std::vector<Val64>& raw, const std::vector<std::uint64_t>& overlay,
                 std::uint64_t load_mask) {
  for (std::size_t pos = 0; pos < raw.size(); ++pos) {
    const std::uint64_t keep = ~overlay[pos] & load_mask;
    raw[pos].one &= keep;
    raw[pos].zero &= keep;
  }
}

Trit trit_at(const Val64& v, std::size_t slot) noexcept {
  if ((v.one >> slot) & 1ull) return Trit::One;
  if ((v.zero >> slot) & 1ull) return Trit::Zero;
  return Trit::X;
}

/// Streams one machine's responses of a batch into a MISR in width-sized
/// words; returns false if an X poisoned the signature along the way.
void absorb_batch(sim::Misr& misr, const std::vector<Val64>& raw,
                  std::size_t loaded) {
  TritVector response(raw.size(), Trit::X);
  for (std::size_t p = 0; p < loaded; ++p) {
    for (std::size_t pos = 0; pos < raw.size(); ++pos)
      response.set(pos, trit_at(raw[pos], p));
    for (std::size_t at = 0; at < response.size(); at += misr.width())
      misr.absorb_masked(response.slice(at, misr.width()));
  }
}

}  // namespace

bool overlay_is_x(std::uint64_t seed, std::uint64_t pattern, std::uint64_t pos,
                  double density) noexcept {
  if (density <= 0.0) return false;
  if (density >= 1.0) return true;
  // Compare the hash's top 53 bits against a density threshold: the same
  // position stays X at every higher density, so X sets nest.
  const std::uint64_t threshold =
      static_cast<std::uint64_t>(density * 9007199254740992.0);  // 2^53
  return (position_hash(seed, pattern, pos) >> 11) < threshold;
}

ResponseAnalyzer::ResponseAnalyzer(const circuit::Netlist& netlist, XCode code,
                                   AnalyzerConfig config)
    : netlist_(&netlist), compactor_(std::move(code)), config_(config) {
  if (compactor_.code().inputs() != netlist.response_width())
    throw std::invalid_argument(
        "analyzer: X-code inputs (" +
        std::to_string(compactor_.code().inputs()) +
        ") != circuit response width (" +
        std::to_string(netlist.response_width()) + ")");
  if (config_.x_density < 0.0 || config_.x_density > 1.0)
    throw std::invalid_argument("analyzer: x_density must be in [0, 1]");
}

namespace {

/// Simulates the good machine over all patterns and precomputes everything
/// the per-fault loop reads: overlaid raw responses, compacted signatures
/// and the environment overlay masks.
std::vector<BatchResponses> good_batches(const circuit::Netlist& netlist,
                                         const Compactor& compactor,
                                         const AnalyzerConfig& cfg,
                                         const bits::TestSet& patterns) {
  if (patterns.pattern_length() != netlist.pattern_width())
    throw std::invalid_argument("analyzer: pattern width mismatch");
  const std::size_t n = netlist.response_width();
  std::vector<BatchResponses> batches;
  ParallelSim sim(netlist);
  for (std::size_t first = 0; first < patterns.pattern_count(); first += 64) {
    BatchResponses b;
    b.first = first;
    b.loaded = sim.load(patterns, first);
    b.load_mask = b.loaded == 64 ? ~0ull : (1ull << b.loaded) - 1;
    sim.run();
    extract_raw(netlist, sim, b.raw);
    b.overlay.assign(n, 0);
    for (std::size_t pos = 0; pos < n; ++pos)
      for (std::size_t p = 0; p < b.loaded; ++p)
        if (overlay_is_x(cfg.x_seed, first + p, pos, cfg.x_density))
          b.overlay[pos] |= 1ull << p;
    apply_masks(b.raw, b.overlay, b.load_mask);
    b.sig.assign(compactor.code().outputs(), Val64::all_x());
    compactor.compact64(b.raw.data(), b.sig.data());
    batches.push_back(std::move(b));
  }
  return batches;
}

struct FaultScore {
  FaultVerdict verdict = FaultVerdict::kUndetected;
  bool violation = false;       // masked despite a within-tolerance 1-bit diff
  bool misr_poisoned = false;
  std::uint64_t misr_signature = 0;
};

FaultScore score_fault(const circuit::Netlist& netlist,
                       const Compactor& compactor, const AnalyzerConfig& cfg,
                       const bits::TestSet& patterns,
                       const std::vector<BatchResponses>& good,
                       const sim::Fault& fault, ParallelSim& fsim,
                       sim::Misr misr) {
  const std::size_t n = netlist.response_width();
  const std::size_t m = compactor.code().outputs();
  const unsigned t = compactor.code().tolerance();
  bool uncomp = false, comp = false, qualifying = false;
  std::vector<Val64> raw, fsig(m);
  for (const BatchResponses& b : good) {
    fsim.load(patterns, b.first);
    fsim.run_with_fault(fault.node, fault.consumer, fault.pin,
                        fault.stuck_value);
    extract_raw(netlist, fsim, raw);
    apply_masks(raw, b.overlay, b.load_mask);

    std::uint64_t d = 0;
    for (std::size_t pos = 0; pos < n; ++pos)
      d |= (b.raw[pos].one & raw[pos].zero) | (b.raw[pos].zero & raw[pos].one);
    if (d != 0) uncomp = true;

    compactor.compact64(raw.data(), fsig.data());
    std::uint64_t dc = 0;
    for (std::size_t r = 0; r < m; ++r)
      dc |= (b.sig[r].one & fsig[r].zero) | (b.sig[r].zero & fsig[r].one);
    if (dc != 0) comp = true;

    // Tolerance self-check: a cycle with exactly one provable diff and at
    // most t unknowns (either machine) must be caught by the compactor.
    for (std::uint64_t rest = d & ~dc; rest != 0; rest &= rest - 1) {
      const unsigned p = static_cast<unsigned>(__builtin_ctzll(rest));
      unsigned diffs = 0, unknowns = 0;
      for (std::size_t pos = 0; pos < n; ++pos) {
        const bool gspec =
            ((b.raw[pos].one | b.raw[pos].zero) >> p) & 1ull;
        const bool fspec = ((raw[pos].one | raw[pos].zero) >> p) & 1ull;
        if (!gspec || !fspec) {
          ++unknowns;
          continue;
        }
        if ((((b.raw[pos].one ^ raw[pos].one) >> p) & 1ull) != 0) ++diffs;
      }
      if (diffs == 1 && unknowns <= t) qualifying = true;
    }

    if (cfg.with_misr) absorb_batch(misr, raw, b.loaded);
  }
  FaultScore score;
  score.verdict = comp ? FaultVerdict::kDetected
                       : (uncomp ? FaultVerdict::kMaskedByCompaction
                                 : FaultVerdict::kUndetected);
  score.violation = uncomp && !comp && qualifying;
  score.misr_poisoned = misr.poisoned();
  score.misr_signature = misr.signature();
  return score;
}

}  // namespace

AnalyzerReport ResponseAnalyzer::analyze(
    const bits::TestSet& patterns, const std::vector<sim::Fault>& faults) const {
  const std::vector<BatchResponses> batches =
      good_batches(*netlist_, compactor_, config_, patterns);

  AnalyzerReport report;
  report.faults = faults.size();
  report.patterns = patterns.pattern_count();
  report.response_width = netlist_->response_width();
  report.compact_outputs = compactor_.code().outputs();
  report.tolerance = compactor_.code().tolerance();
  report.raw_bits =
      static_cast<std::uint64_t>(report.response_width) * report.patterns;
  report.compacted_bits =
      static_cast<std::uint64_t>(report.compact_outputs) * report.patterns;

  // Tester-visible unknowns per cycle (expected responses).
  for (const BatchResponses& b : batches)
    for (std::size_t p = 0; p < b.loaded; ++p) {
      std::size_t count = 0;
      for (const Val64& v : b.raw)
        if (((~(v.one | v.zero)) >> p) & 1ull) ++count;
      report.total_x += count;
      report.max_cycle_x = std::max(report.max_cycle_x, count);
      if (count > report.tolerance) ++report.cycles_over_tolerance;
    }

  std::uint64_t good_misr_sig = 0;
  if (config_.with_misr) {
    report.misr_enabled = true;
    sim::Misr misr = sim::Misr::standard(config_.misr_width);
    for (const BatchResponses& b : batches) absorb_batch(misr, b.raw, b.loaded);
    report.misr_good_poisoned = misr.poisoned();
    good_misr_sig = misr.signature();
  }

  std::vector<FaultScore> scores(faults.size());
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    ParallelSim fsim(*netlist_);
    for (std::size_t i = begin; i < end; ++i)
      scores[i] = score_fault(*netlist_, compactor_, config_, patterns,
                              batches, faults[i], fsim,
                              sim::Misr::standard(config_.misr_width));
  };
  std::size_t jobs = config_.jobs == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : config_.jobs;
  jobs = std::min(jobs, std::max<std::size_t>(1, faults.size()));
  if (jobs <= 1) {
    run_range(0, faults.size());
  } else {
    core::ThreadPool pool(jobs);
    const std::size_t chunk = (faults.size() + jobs - 1) / jobs;
    core::parallel_for(pool, 0, jobs, [&](std::size_t j) {
      const std::size_t begin = j * chunk;
      run_range(begin, std::min(begin + chunk, faults.size()));
    });
  }

  report.verdicts.reserve(scores.size());
  for (const FaultScore& s : scores) {
    report.verdicts.push_back(s.verdict);
    if (s.verdict != FaultVerdict::kUndetected) ++report.detected_uncompacted;
    if (s.verdict == FaultVerdict::kDetected) ++report.detected_compacted;
    if (s.verdict == FaultVerdict::kMaskedByCompaction)
      ++report.masked_by_compaction;
    if (s.violation) ++report.tolerance_violations;
    if (config_.with_misr) {
      if (report.misr_good_poisoned || s.misr_poisoned)
        ++report.misr_no_verdict;
      else if (s.misr_signature != good_misr_sig)
        ++report.misr_detected;
    }
  }
  return report;
}

bits::TritVector ResponseAnalyzer::expected_responses(
    const bits::TestSet& patterns) const {
  const std::vector<BatchResponses> batches =
      good_batches(*netlist_, compactor_, config_, patterns);
  TritVector out;
  for (const BatchResponses& b : batches)
    for (std::size_t p = 0; p < b.loaded; ++p)
      for (const Val64& v : b.raw) out.push_back(trit_at(v, p));
  return out;
}

bits::TritVector ResponseAnalyzer::expected_signatures(
    const bits::TestSet& patterns) const {
  return compactor_.compact_stream(expected_responses(patterns),
                                   patterns.pattern_count());
}

bits::TritVector ResponseAnalyzer::observed_signatures(
    const bits::TestSet& patterns, const sim::Fault* fault,
    std::uint64_t fill_seed) const {
  const std::size_t n = netlist_->response_width();
  TritVector responses;
  ParallelSim sim(*netlist_);
  std::vector<Val64> raw;
  for (std::size_t first = 0; first < patterns.pattern_count(); first += 64) {
    const std::size_t loaded = sim.load(patterns, first);
    if (fault == nullptr)
      sim.run();
    else
      sim.run_with_fault(fault->node, fault->consumer, fault->pin,
                         fault->stuck_value);
    extract_raw(*netlist_, sim, raw);
    for (std::size_t p = 0; p < loaded; ++p)
      for (std::size_t pos = 0; pos < n; ++pos) {
        Trit t = trit_at(raw[pos], p);
        // The physical device holds SOME value on every line: unknowable
        // bits (X propagation or the environment overlay) read back as a
        // deterministic pseudo-random fill.
        if (overlay_is_x(config_.x_seed, first + p, pos, config_.x_density) ||
            t == Trit::X)
          t = fill_bit(fill_seed, first + p, pos) ? Trit::One : Trit::Zero;
        responses.push_back(t);
      }
  }
  return compactor_.compact_stream(responses, patterns.pattern_count());
}

}  // namespace nc::compact
