#include "compact/compactor.h"

#include <stdexcept>

namespace nc::compact {

using bits::Trit;
using bits::TritVector;
using sim::Val64;

Compactor::Compactor(XCode code) : code_(std::move(code)) {
  row_cols_.reserve(code_.outputs());
  for (std::size_t r = 0; r < code_.outputs(); ++r)
    row_cols_.push_back(code_.row_columns(r));
}

TritVector Compactor::compact(const TritVector& response) const {
  if (response.size() != code_.inputs())
    throw std::invalid_argument("compactor: response width mismatch");
  TritVector out(code_.outputs(), Trit::Zero);
  for (std::size_t r = 0; r < row_cols_.size(); ++r) {
    bool parity = false;
    bool unknown = false;
    for (std::size_t c : row_cols_[r]) {
      const Trit t = response.get(c);
      if (t == Trit::X) {
        unknown = true;
        break;
      }
      parity ^= (t == Trit::One);
    }
    out.set(r, unknown ? Trit::X : (parity ? Trit::One : Trit::Zero));
  }
  return out;
}

TritVector Compactor::compact_stream(const TritVector& responses,
                                     std::size_t cycles) const {
  if (responses.size() != cycles * code_.inputs())
    throw std::invalid_argument("compactor: stream length mismatch");
  TritVector out;
  for (std::size_t cy = 0; cy < cycles; ++cy)
    out.append(compact(responses.slice(cy * code_.inputs(), code_.inputs())));
  return out;
}

void Compactor::compact64(const Val64* in, Val64* out) const {
  for (std::size_t r = 0; r < row_cols_.size(); ++r) {
    // 3-valued XOR fold in dual rail: start at constant 0; an X operand
    // (neither rail set) clears both rails of the accumulator, so X is
    // sticky across the fold -- the same semantics as ParallelSim's XOR.
    Val64 acc = Val64::constant(false);
    for (std::size_t c : row_cols_[r]) {
      const Val64 v = in[c];
      acc = Val64{(acc.one & v.zero) | (acc.zero & v.one),
                  (acc.zero & v.zero) | (acc.one & v.one)};
    }
    out[r] = acc;
  }
}

CheckVerdict check_signatures(const TritVector& expected,
                              const TritVector& observed,
                              std::size_t outputs_per_cycle) {
  if (outputs_per_cycle == 0)
    throw std::invalid_argument("check_signatures: zero-width cycle");
  if (expected.size() != observed.size())
    throw std::invalid_argument("check_signatures: stream size mismatch");
  if (expected.size() % outputs_per_cycle != 0)
    throw std::invalid_argument(
        "check_signatures: stream not a whole number of cycles");
  CheckVerdict v;
  v.cycles = expected.size() / outputs_per_cycle;
  for (std::uint64_t cy = 0; cy < v.cycles; ++cy) {
    bool cycle_mismatch = false;
    for (std::size_t o = 0; o < outputs_per_cycle; ++o) {
      const std::size_t at = cy * outputs_per_cycle + o;
      const Trit e = expected.get(at);
      const Trit g = observed.get(at);
      if (e == Trit::X || g == Trit::X) {
        ++v.unknown_outputs;
        continue;
      }
      if (e != g) {
        ++v.mismatched_outputs;
        cycle_mismatch = true;
      }
    }
    if (cycle_mismatch) {
      ++v.mismatched_cycles;
      if (v.first_mismatch_cycle == CheckVerdict::kNoMismatch)
        v.first_mismatch_cycle = cy;
    }
  }
  v.pass = v.mismatched_cycles == 0;
  return v;
}

}  // namespace nc::compact
