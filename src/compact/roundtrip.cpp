#include "compact/roundtrip.h"

#include <stdexcept>

#include "codec/nine_coded.h"

namespace nc::compact {

RoundtripResult run_roundtrip(const circuit::Netlist& netlist,
                              const bits::TestSet& td,
                              const std::vector<sim::Fault>& faults,
                              const RoundtripConfig& config) {
  if (td.pattern_length() != netlist.pattern_width())
    throw std::invalid_argument("roundtrip: TD width (" +
                                std::to_string(td.pattern_length()) +
                                ") != circuit pattern width (" +
                                std::to_string(netlist.pattern_width()) + ")");

  const codec::NineCoded coder(config.block_size, config.codec_impl);
  const bits::TritVector te = coder.encode(td.flatten());
  const bits::TritVector decoded = coder.decode(te, td.bit_count());
  // The decoded stream is the decompressor's legal fill of TD; the scan
  // chains shift in exactly these values.
  const bits::TestSet applied = bits::TestSet::unflatten(
      decoded, td.pattern_count(), td.pattern_length());

  XCodeSpec spec = config.xcode;
  spec.inputs = netlist.response_width();
  const ResponseAnalyzer analyzer(netlist, XCode::build(spec),
                                  config.analyzer);

  RoundtripResult result;
  result.patterns = td.pattern_count();
  result.pattern_width = td.pattern_length();
  result.td_bits = td.bit_count();
  result.te_bits = te.size();
  result.compression_percent =
      result.td_bits == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(result.te_bits) /
                               static_cast<double>(result.td_bits));
  result.xcode_kind = spec.kind;
  result.report = analyzer.analyze(applied, faults);
  return result;
}

}  // namespace nc::compact
