// Raw file I/O behind the persistent store, as an interface.
//
// Store and ShardedStore never call open/pread/pwrite/fsync directly; they
// go through an `Io`, so the crash and fault tests can interpose
// `FaultInjectingIo` and drive *deterministic* schedules of the failures
// real disks produce -- EIO, ENOSPC, short writes, fsync failure, and a
// whole directory dying mid-flight -- without root, loop devices or luck.
//
// Contract: every call returns its result or a NEGATIVE errno; nothing
// here throws. Short reads/writes are legal returns (the caller loops),
// which is exactly the seam the injector uses to tear records.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace nc::store {

/// File-system access used by the store. All methods return >= 0 on
/// success or -errno on failure; none throw.
class Io {
 public:
  virtual ~Io() = default;

  // --- fd ops (open_* return an fd) ---
  virtual int open_read(const std::string& path) = 0;
  /// Read/write, create, truncate -- how segment files are born.
  virtual int open_rw_trunc(const std::string& path) = 0;
  /// Write-only append, create -- how the manifest log is held.
  virtual int open_append(const std::string& path) = 0;
  /// May return short counts; 0 from pread means end of file.
  virtual long pread(int fd, std::uint8_t* buf, std::size_t len,
                     std::uint64_t off) = 0;
  virtual long pwrite(int fd, const std::uint8_t* buf, std::size_t len,
                      std::uint64_t off) = 0;
  virtual long append(int fd, const std::uint8_t* buf, std::size_t len) = 0;
  virtual int fsync_fd(int fd) = 0;
  /// -errno on failure (never a bogus 0-size success).
  virtual long long file_size(int fd) = 0;
  virtual int close_fd(int fd) = 0;

  // --- path ops ---
  virtual int truncate_file(const std::string& path, std::uint64_t len) = 0;
  virtual int unlink_file(const std::string& path) = 0;
  virtual int rename_file(const std::string& from, const std::string& to) = 0;
  virtual int create_dirs(const std::string& path) = 0;
  /// Fills `names` with the entry names (not paths) in `dir`.
  virtual int list_dir(const std::string& dir,
                       std::vector<std::string>& names) = 0;

  /// The real thing; process-wide singleton, stateless and thread-safe.
  static Io& posix();
};

/// Deterministic failure injection around a base Io (default: posix).
///
/// Faults come from an ordered rule list. Each intercepted call finds the
/// FIRST rule matching its operation class and path; a match consumes one
/// trigger: the rule lets `skip` matching calls through untouched, then
/// fires `count` times (0 = forever), returning `-err` -- or, for writes
/// with `short_len` set, performing a genuine short write of `short_len`
/// bytes before the error takes effect on the next call. `kill_path`
/// additionally marks a path substring as dead: every operation touching
/// it fails with EIO, which is what a yanked shard directory looks like.
///
/// Thread-safe; fd->path tracking is internal so rules match by path even
/// for fd-level calls.
class FaultInjectingIo final : public Io {
 public:
  enum class Op : std::uint8_t {
    kAny,
    kOpen,   // open_read / open_rw_trunc / open_append
    kRead,   // pread
    kWrite,  // pwrite / append
    kFsync,
    kMeta,   // truncate / unlink / rename / create_dirs / list_dir
  };

  struct Rule {
    Op op = Op::kAny;
    std::string path_contains;   // empty matches every path
    std::uint64_t skip = 0;      // matching calls to pass through first
    std::uint64_t count = 1;     // times to fire after that; 0 = forever
    int err = EIO;               // errno to inject (returned negated)
    std::size_t short_len = 0;   // writes only: bytes actually written when
                                 // firing; err is ignored for that call
  };

  struct Stats {
    std::uint64_t faults_injected = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t killed_ops = 0;  // ops refused on a killed path
  };

  explicit FaultInjectingIo(Io* base = nullptr)
      : base_(base != nullptr ? base : &Io::posix()) {}

  void add_rule(Rule rule);
  /// Every op whose path contains `substr` fails with EIO from now on.
  void kill_path(std::string substr);
  /// Lifts a previous kill_path (prefix match on the registered substring).
  void revive_path(const std::string& substr);
  void clear();
  Stats stats() const;

  int open_read(const std::string& path) override;
  int open_rw_trunc(const std::string& path) override;
  int open_append(const std::string& path) override;
  long pread(int fd, std::uint8_t* buf, std::size_t len,
             std::uint64_t off) override;
  long pwrite(int fd, const std::uint8_t* buf, std::size_t len,
              std::uint64_t off) override;
  long append(int fd, const std::uint8_t* buf, std::size_t len) override;
  int fsync_fd(int fd) override;
  long long file_size(int fd) override;
  int close_fd(int fd) override;
  int truncate_file(const std::string& path, std::uint64_t len) override;
  int unlink_file(const std::string& path) override;
  int rename_file(const std::string& from, const std::string& to) override;
  int create_dirs(const std::string& path) override;
  int list_dir(const std::string& dir,
               std::vector<std::string>& names) override;

 private:
  /// Returns 0 to pass through, or the negative errno to inject.
  /// `short_out` is set for writes when the rule asks for a short write.
  int check_locked(Op op, const std::string& path, std::size_t* short_out);
  int check(Op op, const std::string& path, std::size_t* short_out = nullptr);
  std::string path_of_locked(int fd) const;

  Io* base_;
  mutable std::mutex mutex_;
  std::vector<Rule> rules_;
  std::vector<std::string> killed_;
  std::unordered_map<int, std::string> fd_paths_;
  Stats stats_;
};

}  // namespace nc::store
