// Erasure-coded multi-shard artifact store tier.
//
// A ShardedStore routes the existing 128-bit content keys across N
// independent store::Store instances ("shards", each its own directory)
// so losing one directory degrades instead of destroying:
//
//   - Small artifacts (below `stripe_threshold_bytes`) are written INLINE:
//     parity+1 byte-identical replicas on the top parity+1 shards of the
//     key's rendezvous ranking.
//   - Large artifacts are STRIPED: split into k = N - parity equal data
//     strips, extended with m = parity Reed-Solomon parity strips
//     (core/erasure.h), strip i stored on ranking[i] under a derived
//     per-strip key; a small stripe head carrying (k, m, total length,
//     payload CRC) is replicated on every shard. Any k of the k+m strips
//     reconstruct the artifact byte-identically.
//
// Placement is rendezvous (highest-random-weight) hashing: each shard is
// scored by fnv128(key, shard index) and the ranking is the descending
// score order -- deterministic, uniform, and stable when a shard count
// never changes (the shard count is pinned by a `sharded.nc9x` marker in
// the root directory; reopening with a different count refuses).
//
// Reads degrade, never lie: a missing/corrupt/erroring shard during get()
// routes around the damage -- another inline replica, or reconstruction
// from any k surviving strips -- counted in `degraded_reads` but invisible
// to the caller until more than m strips are gone (then kCorrupt, i.e. a
// recomputable miss). Every reconstructed payload is CRC-checked against
// the stripe head before it is served.
//
// Each shard has a closed/open/half-open health breaker (same idiom as
// the decomp fleet's device breaker): `breaker_open_after` consecutive
// failures quarantine the shard, `breaker_probe_after` skipped operations
// later a single probe is let through and re-closes the breaker on
// success. A shard whose directory died entirely is reopened (fresh
// Store) by the probe when the directory comes back.
//
// scrub() walks every stripe and replica, re-verifies CRCs, rewrites
// missing/corrupt strips, replicas and heads onto their home shards, and
// reports whether full n-strip redundancy holds. With
// `scrub_interval > 0` a background thread runs it periodically.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/erasure.h"
#include "core/thread_pool.h"
#include "store/store.h"

namespace nc::store {

struct ShardedStoreConfig {
  /// Root directory; shards live in `dir/shard-00` .. `dir/shard-NN`.
  std::string dir;
  /// Shard count, 2..64. 0 means adopt the count (and parity) recorded in
  /// an existing `sharded.nc9x` marker -- how the CLI opens a store it
  /// did not create. Mismatching an existing marker throws.
  unsigned shards = 4;
  /// Parity strips per stripe / extra inline replicas. Survivable
  /// simultaneous shard losses. Must be < shards.
  unsigned parity = 1;
  /// Payloads at or above this are striped; smaller ones are replicated.
  std::size_t stripe_threshold_bytes = 4096;

  // Forwarded to every shard's StoreConfig.
  std::size_t segment_target_bytes = 4u << 20;
  double compact_garbage_ratio = 0.35;
  bool auto_compact = true;
  bool fsync_writes = false;
  core::ThreadPool* pool = nullptr;
  Io* io = nullptr;

  /// Consecutive shard failures that open its breaker.
  unsigned breaker_open_after = 3;
  /// Operations an open breaker skips before letting a probe through.
  std::uint64_t breaker_probe_after = 16;

  /// Background scrub period; 0 disables the thread (scrub() stays
  /// callable).
  std::chrono::milliseconds scrub_interval{0};
};

/// Breaker state of one shard.
enum class ShardHealth : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

const char* to_string(ShardHealth health) noexcept;

/// Router-level counters (per-shard Store stats are separate; see
/// shard_stats()). Monotonic since open.
struct ShardedStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t inline_puts = 0;
  std::uint64_t striped_puts = 0;
  std::uint64_t degraded_reads = 0;      // served despite missing data
  std::uint64_t strips_reconstructed = 0;
  std::uint64_t unrecoverable_reads = 0;  // > m strips gone -> kCorrupt
  std::uint64_t degraded_writes = 0;     // acked with < full redundancy
  std::uint64_t failed_writes = 0;       // threw back to the caller
  std::uint64_t shard_errors = 0;        // shard ops that threw
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t skipped_shard_ops = 0;   // refused while a breaker was open
  std::uint64_t scrubs = 0;
  std::uint64_t shards_degraded = 0;     // shards currently not closed
};

struct ScrubReport {
  /// Every artifact holds its full strip/replica/head complement on its
  /// home shards (after any repairs this pass made).
  bool full_redundancy = true;
  std::uint64_t artifacts = 0;        // stripe heads + inline heads walked
  std::uint64_t strips_checked = 0;
  std::uint64_t heads_missing = 0;    // stripe heads absent from a shard
  std::uint64_t heads_repaired = 0;
  std::uint64_t strips_missing = 0;   // missing or CRC-invalid on arrival
  std::uint64_t strips_repaired = 0;
  std::uint64_t copies_missing = 0;   // inline replicas absent/corrupt
  std::uint64_t copies_repaired = 0;
  std::uint64_t unrecoverable = 0;    // artifacts beyond reconstruction
  std::uint64_t orphan_strips = 0;    // strips whose head is gone everywhere
  std::uint64_t shards_down = 0;      // shards unavailable during the pass
};

class ShardedStore : public ArtifactTier {
 public:
  /// Opens (creating directories, marker and shard stores as needed).
  /// Throws StoreError{kInvalid} on bad geometry or a marker mismatch.
  /// A shard directory that cannot be opened does NOT fail construction:
  /// the shard starts with its breaker open and is probed later.
  explicit ShardedStore(ShardedStoreConfig config);
  ~ShardedStore() override;

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  /// kHit with the byte-identical payload whenever at most `parity` of
  /// the relevant shards are missing/corrupt/unreachable; kCorrupt (treat
  /// as a recomputable miss) beyond that; never throws for shard damage.
  GetResult get(const Key& key) override;

  /// Stores with full redundancy when every shard cooperates; acks a
  /// degraded write while the payload is still guaranteed reconstructable
  /// and repairable; throws StoreError once it is not.
  void put(const Key& key, const std::uint8_t* data, std::size_t len) override;
  void put(const Key& key, const std::vector<std::uint8_t>& payload);

  /// Removes the artifact (head + strips/replicas) from every reachable
  /// shard. Returns false when no shard held it.
  bool erase(const Key& key);

  bool contains(const Key& key);

  /// One verify-and-repair pass over every artifact; see the file
  /// comment. Safe to run concurrently with reads and writes.
  ScrubReport scrub();

  /// Compacts every reachable shard; returns total bytes reclaimed.
  std::uint64_t compact(double min_garbage_ratio);

  /// Per-shard passthroughs (CLI). Throw StoreError{kIoError} when the
  /// shard is unreachable.
  FsckReport fsck_shard(unsigned shard, bool repair);
  StoreStats shard_stats(unsigned shard);

  ShardedStats stats() const;
  std::vector<ShardHealth> shard_health() const;
  unsigned shards() const noexcept { return config_.shards; }
  unsigned parity() const noexcept { return config_.parity; }
  unsigned data_strips() const noexcept { return config_.shards - config_.parity; }
  const ShardedStoreConfig& config() const noexcept { return config_; }

  static std::string shard_dir_name(unsigned shard);
  /// True when `dir` holds a sharded.nc9x marker.
  static bool is_sharded_dir(const std::string& dir);

 private:
  struct Shard {
    std::shared_ptr<Store> store;  // null while unopenable
    ShardHealth health = ShardHealth::kClosed;
    unsigned consecutive_failures = 0;
    std::uint64_t skipped = 0;  // ops refused since the breaker opened
  };

  /// Result of one guarded shard operation.
  struct ShardGet {
    bool attempted = false;  // false: breaker refused or the op threw
    GetResult result;
  };

  void load_or_write_marker();
  std::shared_ptr<Store> open_shard(unsigned shard) const;  // may throw
  /// Breaker gate: returns the store to use, or null when the shard is
  /// quarantined (counting the skip). May reopen a dead shard on probe.
  std::shared_ptr<Store> acquire(unsigned shard);
  void report_ok(unsigned shard);
  void report_failure(unsigned shard);

  ShardGet try_get(unsigned shard, const Key& key);
  bool try_put(unsigned shard, const Key& key, const std::uint8_t* data,
               std::size_t len, StoreErrc* errc_out = nullptr);

  std::vector<unsigned> rank(const Key& key) const;
  static Key strip_key(const Key& key, unsigned index);

  GetResult get_striped(const Key& key, const std::vector<unsigned>& ranking,
                        unsigned k, unsigned m, std::uint64_t total_len,
                        std::uint32_t payload_crc, bool head_degraded);

  void scrub_inline(const Key& key, unsigned copies, ScrubReport& rep);
  void scrub_striped(const Key& key, unsigned k, unsigned m,
                     std::uint64_t total_len, std::uint32_t payload_crc,
                     const std::vector<std::uint8_t>& head_record,
                     ScrubReport& rep);

  ShardedStoreConfig config_;
  Io* io_ = nullptr;
  core::ErasureCodec codec_;

  mutable std::mutex mutex_;  // shards_ + stats_; never held across I/O
  std::vector<Shard> shards_;
  ShardedStats stats_;

  std::thread scrub_thread_;
  std::mutex scrub_mutex_;
  std::condition_variable scrub_cv_;
  bool stop_scrub_ = false;
};

}  // namespace nc::store
