// Persistent content-addressed artifact store.
//
// The serve layer's in-memory artifact cache (serve/cache.h) dies with the
// process; this store is its durable L2 tier: artifacts keyed by the same
// 128-bit content address survive restarts, so a rebooted server answers
// warm instead of recomputing every 9C artifact. The paper's TD-independent
// decompressor is what makes this sound -- an encoded artifact is a pure
// function of (kind, codec spec, input bytes), so a stored payload is valid
// forever and two stores never disagree about a key's bytes.
//
// On-disk layout (`dir/`):
//
//   manifest.nc9m           write-ahead manifest log (index of record births
//                           and deaths; the only thing replayed at open)
//   seg-000001.nc9a ...     append-only segment files holding the payloads
//
// Segment file ("NC9A"):
//   header: magic "NC9A" | u8 version | u64 segment id          (13 bytes)
//   record: u32 payload_len | u64 key.lo | u64 key.hi |
//           payload bytes | u32 CRC-32 over (key bytes + payload)
//
// Manifest ("NC9M", same discipline as the NC9J fleet journal):
//   header: magic "NC9M" | u8 version | u64 config hash         (13 bytes)
//   record: u32 body_len | body | u32 CRC-32(body)
//   body:   u8 op=1 (put)    | key | u64 segment | u64 offset |
//                              u32 payload_len | u32 record CRC
//           u8 op=2 (erase)  | key            (deletion / corruption tombstone)
//           u8 op=3 (retire) | u64 segment    (segment fully compacted)
//
// Crash safety: every mutation appends the segment record FIRST, then the
// manifest record, each CRC-framed. Replay walks the manifest front to back
// and stops at the first record whose length or CRC fails -- a kill at any
// byte offset therefore loses at most the newest record and never corrupts
// the index; torn tail bytes are truncated away on reopen. A record whose
// segment bytes landed but whose manifest entry did not is an *orphan*:
// invisible after reopen, but recoverable by fsck(repair), which re-indexes
// any CRC-valid segment record that is neither indexed nor tombstoned
// (sound because content addressing makes every valid record for a key
// byte-identical).
//
// Reads revalidate: get() rereads the record and checks key + CRC; a
// corrupt record degrades to a miss, is dropped from the index and
// tombstoned in the manifest so it is never served, now or after restart.
//
// Compaction rewrites the live records of the most-garbage sealed segment
// into the active segment, then retires and unlinks the victim. It is
// concurrent-reader-safe without a stop-the-world phase: the index maps
// keys to (shared_ptr<Segment>, offset), readers copy that reference under
// the lock and pread outside it, so a reader that raced the move still
// reads the old record through its still-open fd -- byte-identical to the
// new copy -- and never observes a partially compacted view. When
// `auto_compact` is on and a segment crosses `compact_garbage_ratio`, the
// rewrite runs as a background task on the configured nc_core::ThreadPool
// (or inline when no pool is given).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/thread_pool.h"

namespace nc::store {

class Io;

/// What went wrong, machine-readably. Callers that can react differently
/// to a full disk than to a flaky one (the serve write-through retry, the
/// sharded router's breaker) dispatch on this instead of parsing strings.
enum class StoreErrc : std::uint8_t {
  kIoError,   // EIO, short read, fsync failure ... possibly transient
  kNoSpace,   // ENOSPC/EDQUOT/EFBIG: retrying without freeing space is futile
  kCorrupt,   // on-disk bytes that cannot be trusted (bad magic/version/CRC)
  kInvalid,   // caller error: bad config, oversized payload
};

/// Typed store failure. Still a std::runtime_error so existing catch
/// sites keep working; new ones switch on code().
class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  StoreErrc code() const noexcept { return code_; }

 private:
  StoreErrc code_;
};

/// 128-bit content address (the serve layer's FNV-1a cache key verbatim).
struct Key {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Key&) const = default;
  std::string hex() const;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ull));
  }
};

struct StoreConfig {
  std::string dir;
  /// The active segment is sealed (and a new one started) once it grows
  /// past this; smaller segments mean finer-grained compaction.
  std::size_t segment_target_bytes = 4u << 20;
  /// A sealed segment whose dead fraction reaches this becomes a
  /// compaction victim.
  double compact_garbage_ratio = 0.35;
  /// Schedule compaction automatically after puts/erases that create
  /// enough garbage. Off for tools that want explicit control (fsck, CLI).
  bool auto_compact = true;
  /// Pool for background compaction; nullptr runs eligible compactions
  /// inline on the mutating thread. Not owned; must outlive the store.
  core::ThreadPool* pool = nullptr;
  /// fsync segment + manifest on every mutation. Off by default: the
  /// store's crash contract (lose at most the newest record) already holds
  /// against process kills; fsync extends it to power loss at a large
  /// throughput cost.
  bool fsync_writes = false;
  /// File I/O implementation; nullptr means the real POSIX one. Tests
  /// substitute a FaultInjectingIo (io.h). Not owned; must outlive the
  /// store.
  Io* io = nullptr;
};

struct StoreStats {
  // Current state.
  std::uint64_t records = 0;        // live keys in the index
  std::uint64_t segments = 0;       // segment files (including active)
  std::uint64_t live_bytes = 0;     // record bytes reachable from the index
  std::uint64_t dead_bytes = 0;     // garbage awaiting compaction
  std::uint64_t manifest_bytes = 0;
  std::uint64_t tombstones = 0;
  // Monotonic since open.
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t duplicate_puts = 0;  // key already stored (content-addressed)
  std::uint64_t erases = 0;
  std::uint64_t corrupt_drops = 0;   // records failing revalidation
  std::uint64_t compactions = 0;     // segments retired
  std::uint64_t records_moved = 0;
  std::uint64_t bytes_reclaimed = 0;
  // Recovery facts from open().
  bool recovered = false;                  // an existing manifest was replayed
  std::uint64_t replayed_records = 0;      // manifest records applied
  std::uint64_t torn_bytes_discarded = 0;  // manifest tail truncated
  std::uint64_t dropped_at_open = 0;       // entries disagreeing with segments

  double garbage_ratio() const noexcept {
    const std::uint64_t total = live_bytes + dead_bytes;
    return total == 0 ? 0.0
                      : static_cast<double>(dead_bytes) /
                            static_cast<double>(total);
  }
};

struct FsckReport {
  /// True when the manifest-derived index and the segment files fully
  /// agree: no index entry without a valid record behind it, no
  /// recoverable orphan record, no stray segment file. Dead-but-harmless
  /// garbage (overwritten copies, CRC-invalid unindexed records, torn
  /// segment tails) is reported in the counters but does not make the
  /// store unclean -- compaction, not fsck, reclaims it.
  bool clean = true;
  bool repaired = false;  // ran with repair=true and changed something
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_scanned = 0;
  std::uint64_t corrupt_records = 0;      // CRC-invalid segment records
  std::uint64_t torn_segment_bytes = 0;   // unparseable segment tails
  std::uint64_t dangling_entries = 0;     // index entries with no valid record
  std::uint64_t orphan_records = 0;       // valid, unindexed, not tombstoned
  std::uint64_t orphans_recovered = 0;    // re-indexed by repair
  std::uint64_t duplicate_records = 0;    // dead extra copies of live keys
  std::uint64_t stray_segments = 0;       // files with nothing live
  std::uint64_t stray_segments_removed = 0;
};

enum class GetStatus : std::uint8_t {
  kHit,      // payload returned, CRC-revalidated
  kMiss,     // key not present
  kCorrupt,  // record failed revalidation; dropped + tombstoned, see a miss
};

struct GetResult {
  GetStatus status = GetStatus::kMiss;
  std::vector<std::uint8_t> payload;  // filled only on kHit
};

/// What the serve layer needs from an L2 tier -- implemented by both the
/// single-directory Store and the erasure-coded ShardedStore, so the
/// server holds one pointer either way.
class ArtifactTier {
 public:
  virtual ~ArtifactTier() = default;
  virtual GetResult get(const Key& key) = 0;
  virtual void put(const Key& key, const std::uint8_t* data,
                   std::size_t len) = 0;
};

class Store : public ArtifactTier {
 public:
  /// Opens (creating the directory and manifest if absent) and replays the
  /// manifest into the in-memory index. Throws std::runtime_error on a
  /// manifest that exists but cannot be trusted (foreign magic, wrong
  /// version/config hash) or on I/O failure. A torn manifest tail is
  /// truncated, losing at most the newest record.
  explicit Store(StoreConfig config);

  /// Waits for any in-flight background compaction, flushes and closes.
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Looks the key up and revalidates the stored record (key echo + CRC).
  /// kCorrupt means the record was dropped and tombstoned; callers treat
  /// it as a miss but may count it separately.
  GetResult get(const Key& key) override;

  /// Durably stores the payload. A key already present is a no-op (content
  /// addressing: same key implies same bytes). Throws StoreError on I/O
  /// failure -- code kNoSpace when the device is full, kIoError otherwise.
  void put(const Key& key, const std::uint8_t* data, std::size_t len) override;
  void put(const Key& key, const std::vector<std::uint8_t>& payload);

  /// Removes the key (manifest tombstone; segment bytes become garbage for
  /// compaction). Returns false when the key was not present.
  bool erase(const Key& key);

  bool contains(const Key& key) const;

  /// Snapshot of every live key, unordered. The sharded store's scrub
  /// walks this to enumerate stripe members per shard.
  std::vector<Key> keys() const;

  /// Compacts sealed segments whose garbage ratio is at least
  /// `min_garbage_ratio` (0 compacts any sealed segment holding garbage),
  /// repeatedly until none qualifies. Returns file bytes reclaimed.
  /// Safe to call concurrently with readers and writers; concurrent
  /// compactions serialize.
  std::uint64_t compact(double min_garbage_ratio);

  /// Full segment scan cross-checked against the index. With repair=true,
  /// drops dangling index entries (tombstoning them), re-indexes orphan
  /// records and deletes stray segment files. Quiesces compaction for its
  /// duration; readers and writers block on the store mutex.
  FsckReport fsck(bool repair);

  StoreStats stats() const;
  const StoreConfig& config() const noexcept { return config_; }

 private:
  struct Segment {
    std::uint64_t id = 0;
    std::string path;
    int fd = -1;
    bool sealed = false;
    // Mutated only under Store::mutex_.
    std::uint64_t size = 0;        // append offset / file size
    std::uint64_t live_bytes = 0;  // record bytes the index references
    std::uint64_t live_records = 0;

    ~Segment();
  };

  struct Location {
    std::shared_ptr<Segment> segment;
    std::uint64_t offset = 0;       // of the record start within the file
    std::uint32_t payload_len = 0;
    std::uint32_t record_crc = 0;   // trailer CRC, cross-checked on read
  };

  // All *_locked members require mutex_.
  void ensure_active_segment_locked();
  void seal_active_locked();
  Location append_record_locked(const Key& key, const std::uint8_t* data,
                                std::size_t len);
  void append_manifest_locked(const std::vector<std::uint8_t>& body);
  void manifest_put_locked(const Key& key, const Location& loc);
  void manifest_erase_locked(const Key& key);
  void manifest_retire_locked(std::uint64_t segment_id);
  void drop_entry_locked(const Key& key, const Location& loc);
  std::uint64_t dead_bytes_locked(const Segment& seg) const;
  std::shared_ptr<Segment> pick_victim_locked(double min_garbage_ratio) const;

  bool read_record(const Location& loc, const Key& key,
                   std::vector<std::uint8_t>& payload) const;
  std::uint64_t compact_segment(const std::shared_ptr<Segment>& victim);
  void maybe_schedule_compaction();
  void replay_manifest();
  void rewrite_manifest_if_bloated();
  void open_manifest_for_append(std::uint64_t valid_end,
                                std::uint64_t file_size);

  StoreConfig config_;
  Io* io_ = nullptr;  // config_.io or the POSIX singleton
  std::string manifest_path_;
  /// Set when a failed manifest append could not be rolled back: the log
  /// has torn bytes mid-file and further appends would corrupt it, so
  /// every later mutation fails fast instead.
  bool manifest_broken_ = false;

  mutable std::mutex mutex_;
  std::unordered_map<Key, Location, KeyHash> index_;
  std::unordered_set<Key, KeyHash> tombstones_;
  std::map<std::uint64_t, std::shared_ptr<Segment>> segments_;  // id-ordered
  std::shared_ptr<Segment> active_;
  std::uint64_t next_segment_id_ = 1;
  int manifest_fd_ = -1;
  std::uint64_t manifest_bytes_ = 0;
  StoreStats stats_;

  // Compaction exclusion: one compaction (or fsck) at a time; the
  // destructor waits until nothing is in flight.
  std::mutex compact_mutex_;
  std::condition_variable compact_cv_;
  bool compact_busy_ = false;       // a compact()/fsck() pass is running
  bool compact_scheduled_ = false;  // a background task is queued/running
  bool closing_ = false;
};

}  // namespace nc::store
