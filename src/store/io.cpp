#include "store/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <system_error>

namespace nc::store {

namespace {

namespace fs = std::filesystem;

/// POSIX passthrough. EINTR is retried here so no caller ever sees it;
/// short counts from the kernel are passed up (callers loop).
class PosixIo final : public Io {
 public:
  int open_read(const std::string& path) override {
    for (;;) {
      const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd >= 0) return fd;
      if (errno != EINTR) return -errno;
    }
  }

  int open_rw_trunc(const std::string& path) override {
    for (;;) {
      const int fd =
          ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
      if (fd >= 0) return fd;
      if (errno != EINTR) return -errno;
    }
  }

  int open_append(const std::string& path) override {
    for (;;) {
      const int fd = ::open(path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
      if (fd >= 0) return fd;
      if (errno != EINTR) return -errno;
    }
  }

  long pread(int fd, std::uint8_t* buf, std::size_t len,
             std::uint64_t off) override {
    for (;;) {
      const ssize_t n = ::pread(fd, buf, len, static_cast<off_t>(off));
      if (n >= 0) return static_cast<long>(n);
      if (errno != EINTR) return -errno;
    }
  }

  long pwrite(int fd, const std::uint8_t* buf, std::size_t len,
              std::uint64_t off) override {
    for (;;) {
      const ssize_t n = ::pwrite(fd, buf, len, static_cast<off_t>(off));
      if (n >= 0) return static_cast<long>(n);
      if (errno != EINTR) return -errno;
    }
  }

  long append(int fd, const std::uint8_t* buf, std::size_t len) override {
    for (;;) {
      const ssize_t n = ::write(fd, buf, len);
      if (n >= 0) return static_cast<long>(n);
      if (errno != EINTR) return -errno;
    }
  }

  int fsync_fd(int fd) override {
    for (;;) {
      if (::fdatasync(fd) == 0) return 0;
      if (errno != EINTR) return -errno;
    }
  }

  long long file_size(int fd) override {
    struct stat st{};
    if (::fstat(fd, &st) != 0) return -errno;
    return static_cast<long long>(st.st_size);
  }

  int close_fd(int fd) override {
    // Never retry close on EINTR: POSIX leaves the fd state unspecified
    // and Linux always releases it.
    return ::close(fd) == 0 ? 0 : -errno;
  }

  int truncate_file(const std::string& path, std::uint64_t len) override {
    for (;;) {
      if (::truncate(path.c_str(), static_cast<off_t>(len)) == 0) return 0;
      if (errno != EINTR) return -errno;
    }
  }

  int unlink_file(const std::string& path) override {
    return ::unlink(path.c_str()) == 0 ? 0 : -errno;
  }

  int rename_file(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str()) == 0 ? 0 : -errno;
  }

  int create_dirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    return ec ? -(ec.value() != 0 ? ec.value() : EIO) : 0;
  }

  int list_dir(const std::string& dir,
               std::vector<std::string>& names) override {
    names.clear();
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) return -(ec.value() != 0 ? ec.value() : EIO);
    for (const auto& entry : it)
      names.push_back(entry.path().filename().string());
    return 0;
  }
};

}  // namespace

Io& Io::posix() {
  static PosixIo io;
  return io;
}

// ------------------------------------------------------ FaultInjectingIo

void FaultInjectingIo::add_rule(Rule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  // count == 0 means "forever"; internally that is a saturated counter so
  // an exhausted rule (count decremented to 0) is distinguishable.
  if (rule.count == 0) rule.count = ~std::uint64_t{0};
  rules_.push_back(std::move(rule));
}

void FaultInjectingIo::kill_path(std::string substr) {
  std::lock_guard<std::mutex> lock(mutex_);
  killed_.push_back(std::move(substr));
}

void FaultInjectingIo::revive_path(const std::string& substr) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(killed_, [&substr](const std::string& k) {
    return k.rfind(substr, 0) == 0;
  });
}

void FaultInjectingIo::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  killed_.clear();
}

FaultInjectingIo::Stats FaultInjectingIo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string FaultInjectingIo::path_of_locked(int fd) const {
  const auto it = fd_paths_.find(fd);
  return it != fd_paths_.end() ? it->second : std::string();
}

int FaultInjectingIo::check_locked(Op op, const std::string& path,
                                   std::size_t* short_out) {
  for (const std::string& dead : killed_) {
    if (path.find(dead) != std::string::npos) {
      ++stats_.killed_ops;
      return -EIO;
    }
  }
  for (Rule& rule : rules_) {
    const bool op_match = rule.op == Op::kAny || rule.op == op;
    if (!op_match) continue;
    if (!rule.path_contains.empty() &&
        path.find(rule.path_contains) == std::string::npos)
      continue;
    if (rule.count == 0) continue;  // exhausted; later rules may still match
    if (rule.skip > 0) {
      --rule.skip;
      return 0;
    }
    --rule.count;
    if (rule.short_len > 0 && op == Op::kWrite && short_out != nullptr) {
      *short_out = rule.short_len;
      ++stats_.short_writes;
      return 0;  // the caller performs the (short) write for real
    }
    ++stats_.faults_injected;
    return -rule.err;
  }
  return 0;
}

int FaultInjectingIo::check(Op op, const std::string& path,
                            std::size_t* short_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return check_locked(op, path, short_out);
}

int FaultInjectingIo::open_read(const std::string& path) {
  if (const int err = check(Op::kOpen, path)) return err;
  const int fd = base_->open_read(path);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_[fd] = path;
  }
  return fd;
}

int FaultInjectingIo::open_rw_trunc(const std::string& path) {
  if (const int err = check(Op::kOpen, path)) return err;
  const int fd = base_->open_rw_trunc(path);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_[fd] = path;
  }
  return fd;
}

int FaultInjectingIo::open_append(const std::string& path) {
  if (const int err = check(Op::kOpen, path)) return err;
  const int fd = base_->open_append(path);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_[fd] = path;
  }
  return fd;
}

long FaultInjectingIo::pread(int fd, std::uint8_t* buf, std::size_t len,
                             std::uint64_t off) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = path_of_locked(fd);
    if (const int err = check_locked(Op::kRead, path, nullptr)) return err;
  }
  return base_->pread(fd, buf, len, off);
}

long FaultInjectingIo::pwrite(int fd, const std::uint8_t* buf,
                              std::size_t len, std::uint64_t off) {
  std::size_t short_len = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string path = path_of_locked(fd);
    if (const int err = check_locked(Op::kWrite, path, &short_len)) return err;
  }
  if (short_len > 0 && short_len < len) len = short_len;
  return base_->pwrite(fd, buf, len, off);
}

long FaultInjectingIo::append(int fd, const std::uint8_t* buf,
                              std::size_t len) {
  std::size_t short_len = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string path = path_of_locked(fd);
    if (const int err = check_locked(Op::kWrite, path, &short_len)) return err;
  }
  if (short_len > 0 && short_len < len) len = short_len;
  return base_->append(fd, buf, len);
}

int FaultInjectingIo::fsync_fd(int fd) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = path_of_locked(fd);
    if (const int err = check_locked(Op::kFsync, path, nullptr)) return err;
  }
  return base_->fsync_fd(fd);
}

long long FaultInjectingIo::file_size(int fd) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = path_of_locked(fd);
    if (const int err = check_locked(Op::kMeta, path, nullptr)) return err;
  }
  return base_->file_size(fd);
}

int FaultInjectingIo::close_fd(int fd) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_.erase(fd);
  }
  return base_->close_fd(fd);
}

int FaultInjectingIo::truncate_file(const std::string& path,
                                    std::uint64_t len) {
  if (const int err = check(Op::kMeta, path)) return err;
  return base_->truncate_file(path, len);
}

int FaultInjectingIo::unlink_file(const std::string& path) {
  if (const int err = check(Op::kMeta, path)) return err;
  return base_->unlink_file(path);
}

int FaultInjectingIo::rename_file(const std::string& from,
                                  const std::string& to) {
  if (const int err = check(Op::kMeta, from)) return err;
  if (const int err = check(Op::kMeta, to)) return err;
  return base_->rename_file(from, to);
}

int FaultInjectingIo::create_dirs(const std::string& path) {
  if (const int err = check(Op::kMeta, path)) return err;
  return base_->create_dirs(path);
}

int FaultInjectingIo::list_dir(const std::string& dir,
                               std::vector<std::string>& names) {
  if (const int err = check(Op::kMeta, dir)) return err;
  return base_->list_dir(dir, names);
}

}  // namespace nc::store
