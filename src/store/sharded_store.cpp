#include "store/sharded_store.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/crc.h"
#include "core/hash.h"
#include "store/io.h"

namespace nc::store {

namespace fs = std::filesystem;

namespace {

// Record type bytes, the first payload byte of every record a ShardedStore
// writes into its shard Stores. Anything else in a shard directory was not
// written by this router.
constexpr std::uint8_t kInlineHead = 0xA1;  // | u8 copies | u32 crc | payload
constexpr std::uint8_t kStripedHead = 0xA2;  // | u8 k | u8 m | u64 len | u32 crc
constexpr std::uint8_t kStripRecord = 0xA3;  // | u8 index | u8 k | u8 m | bytes

constexpr std::size_t kInlineHeadBytes = 6;
constexpr std::size_t kStripedHeadBytes = 15;
constexpr std::size_t kStripHeaderBytes = 4;

constexpr char kMarkerName[] = "sharded.nc9x";
constexpr std::array<std::uint8_t, 4> kMarkerMagic = {'N', 'C', '9', 'X'};
constexpr std::uint8_t kMarkerVersion = 1;
constexpr std::size_t kMarkerBytes = 4 + 1 + 1 + 1 + 4;  // magic ver n m crc

std::uint32_t read_le32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

struct HeadInfo {
  std::uint8_t type = 0;  // kInlineHead or kStripedHead
  unsigned copies = 0;    // inline
  unsigned k = 0, m = 0;  // striped
  std::uint64_t total_len = 0;
  std::uint32_t crc = 0;
};

/// Parses a head record; false for anything malformed (served strips are
/// also "not a head"). Inline payload bytes start at kInlineHeadBytes.
bool parse_head(const std::vector<std::uint8_t>& rec, HeadInfo& out) {
  if (rec.empty()) return false;
  if (rec[0] == kInlineHead) {
    if (rec.size() < kInlineHeadBytes) return false;
    out.type = kInlineHead;
    out.copies = rec[1];
    out.crc = read_le32(rec.data() + 2);
    return out.copies >= 1;
  }
  if (rec[0] == kStripedHead) {
    if (rec.size() != kStripedHeadBytes) return false;
    out.type = kStripedHead;
    out.k = rec[1];
    out.m = rec[2];
    out.total_len = read_le64(rec.data() + 3);
    out.crc = read_le32(rec.data() + 11);
    return out.k >= 1;
  }
  return false;
}

std::vector<std::uint8_t> inline_head_record(unsigned copies,
                                             const std::uint8_t* data,
                                             std::size_t len) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kInlineHeadBytes + len);
  rec.push_back(kInlineHead);
  rec.push_back(static_cast<std::uint8_t>(copies));
  put_u32(rec, core::crc32(data, len));
  rec.insert(rec.end(), data, data + len);
  return rec;
}

std::vector<std::uint8_t> striped_head_record(unsigned k, unsigned m,
                                              std::uint64_t total_len,
                                              std::uint32_t crc) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kStripedHeadBytes);
  rec.push_back(kStripedHead);
  rec.push_back(static_cast<std::uint8_t>(k));
  rec.push_back(static_cast<std::uint8_t>(m));
  put_u64(rec, total_len);
  put_u32(rec, crc);
  return rec;
}

std::vector<std::uint8_t> strip_record(unsigned index, unsigned k, unsigned m,
                                       const std::uint8_t* data,
                                       std::size_t len) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kStripHeaderBytes + len);
  rec.push_back(kStripRecord);
  rec.push_back(static_cast<std::uint8_t>(index));
  rec.push_back(static_cast<std::uint8_t>(k));
  rec.push_back(static_cast<std::uint8_t>(m));
  rec.insert(rec.end(), data, data + len);
  return rec;
}

/// Validates a fetched strip record against the stripe geometry; on
/// success copies the strip bytes out.
bool parse_strip(const std::vector<std::uint8_t>& rec, unsigned index,
                 unsigned k, unsigned m, std::size_t strip_len,
                 std::vector<std::uint8_t>& out) {
  if (rec.size() != kStripHeaderBytes + strip_len) return false;
  if (rec[0] != kStripRecord || rec[1] != index || rec[2] != k || rec[3] != m)
    return false;
  out.assign(rec.begin() + kStripHeaderBytes, rec.end());
  return true;
}

std::size_t strip_length(std::uint64_t total_len, unsigned k) {
  return static_cast<std::size_t>((total_len + k - 1) / k);
}

}  // namespace

const char* to_string(ShardHealth health) noexcept {
  switch (health) {
    case ShardHealth::kClosed:
      return "closed";
    case ShardHealth::kOpen:
      return "open";
    case ShardHealth::kHalfOpen:
      return "half-open";
  }
  return "?";
}

std::string ShardedStore::shard_dir_name(unsigned shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%02u", shard);
  return buf;
}

bool ShardedStore::is_sharded_dir(const std::string& dir) {
  std::error_code ec;
  return fs::exists(fs::path(dir) / kMarkerName, ec);
}

// ------------------------------------------------------------------ open

ShardedStore::ShardedStore(ShardedStoreConfig config)
    : config_(std::move(config)),
      io_(config_.io != nullptr ? config_.io : &Io::posix()),
      codec_(1, 0) {
  if (config_.dir.empty())
    throw StoreError(StoreErrc::kInvalid, "sharded store: empty directory");
  if (const int err = io_->create_dirs(config_.dir))
    throw StoreError(StoreErrc::kIoError,
                     "cannot create sharded store directory " + config_.dir +
                         ": " + std::strerror(-err));
  load_or_write_marker();
  if (config_.shards < 2 || config_.shards > 64)
    throw StoreError(StoreErrc::kInvalid,
                     "sharded store: shard count must be in [2, 64]");
  if (config_.parity >= config_.shards)
    throw StoreError(StoreErrc::kInvalid,
                     "sharded store: parity must be < shards");
  codec_ = core::ErasureCodec(data_strips(), config_.parity);

  shards_.resize(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    try {
      shards_[s].store = open_shard(s);
    } catch (const std::exception&) {
      // An unopenable shard quarantines itself instead of failing the
      // whole tier; a later half-open probe retries the open.
      shards_[s].health = ShardHealth::kOpen;
      ++stats_.breaker_opens;
    }
  }

  if (config_.scrub_interval.count() > 0) {
    scrub_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(scrub_mutex_);
      while (!stop_scrub_) {
        if (scrub_cv_.wait_for(lock, config_.scrub_interval,
                               [this] { return stop_scrub_; }))
          break;
        lock.unlock();
        try {
          scrub();
        } catch (const std::exception&) {
          // Background scrub is best-effort; the next pass retries.
        }
        lock.lock();
      }
    });
  }
}

ShardedStore::~ShardedStore() {
  if (scrub_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(scrub_mutex_);
      stop_scrub_ = true;
    }
    scrub_cv_.notify_all();
    scrub_thread_.join();
  }
}

void ShardedStore::load_or_write_marker() {
  const std::string path = (fs::path(config_.dir) / kMarkerName).string();
  const int fd = io_->open_read(path);
  if (fd >= 0) {
    std::uint8_t buf[kMarkerBytes];
    bool ok = true;
    std::size_t done = 0;
    while (done < kMarkerBytes) {
      const long n = io_->pread(fd, buf + done, kMarkerBytes - done, done);
      if (n <= 0) {
        ok = false;
        break;
      }
      done += static_cast<std::size_t>(n);
    }
    io_->close_fd(fd);
    ok = ok && std::equal(kMarkerMagic.begin(), kMarkerMagic.end(), buf) &&
         buf[4] == kMarkerVersion &&
         read_le32(buf + 7) == core::crc32(buf, 7);
    if (!ok)
      throw StoreError(StoreErrc::kCorrupt,
                       path + " is not a valid sharded store marker");
    const unsigned shards = buf[5];
    const unsigned parity = buf[6];
    if (config_.shards == 0) {
      config_.shards = shards;
      config_.parity = parity;
      return;
    }
    if (config_.shards != shards || config_.parity != parity)
      throw StoreError(
          StoreErrc::kInvalid,
          "sharded store geometry mismatch: " + path + " records " +
              std::to_string(shards) + "+" + std::to_string(parity) +
              " but configuration asks for " + std::to_string(config_.shards) +
              "+" + std::to_string(config_.parity));
    return;
  }
  if (fd != -ENOENT)
    throw StoreError(StoreErrc::kIoError,
                     "cannot read " + path + ": " + std::strerror(-fd));
  if (config_.shards == 0)
    throw StoreError(StoreErrc::kInvalid,
                     config_.dir + " holds no sharded store (no " +
                         kMarkerName + ")");

  // Write the marker atomically (tmp + rename): a kill mid-create leaves
  // either no marker (the next open rewrites it) or a complete one.
  std::vector<std::uint8_t> bytes(kMarkerMagic.begin(), kMarkerMagic.end());
  bytes.push_back(kMarkerVersion);
  bytes.push_back(static_cast<std::uint8_t>(config_.shards));
  bytes.push_back(static_cast<std::uint8_t>(config_.parity));
  put_u32(bytes, core::crc32(bytes.data(), bytes.size()));
  const std::string tmp = path + ".tmp";
  const int wfd = io_->open_rw_trunc(tmp);
  if (wfd < 0)
    throw StoreError(-wfd == ENOSPC ? StoreErrc::kNoSpace : StoreErrc::kIoError,
                     "cannot write " + tmp + ": " + std::strerror(-wfd));
  std::size_t done = 0;
  while (done < bytes.size()) {
    const long n =
        io_->pwrite(wfd, bytes.data() + done, bytes.size() - done, done);
    if (n <= 0) {
      io_->close_fd(wfd);
      throw StoreError(StoreErrc::kIoError, "cannot write " + tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  io_->fsync_fd(wfd);
  io_->close_fd(wfd);
  if (const int err = io_->rename_file(tmp, path))
    throw StoreError(StoreErrc::kIoError,
                     "cannot place " + path + ": " + std::strerror(-err));
}

std::shared_ptr<Store> ShardedStore::open_shard(unsigned shard) const {
  StoreConfig sc;
  sc.dir = (fs::path(config_.dir) / shard_dir_name(shard)).string();
  sc.segment_target_bytes = config_.segment_target_bytes;
  sc.compact_garbage_ratio = config_.compact_garbage_ratio;
  sc.auto_compact = config_.auto_compact;
  sc.fsync_writes = config_.fsync_writes;
  sc.pool = config_.pool;
  sc.io = io_;
  return std::make_shared<Store>(std::move(sc));
}

// --------------------------------------------------------------- breaker

std::shared_ptr<Store> ShardedStore::acquire(unsigned shard) {
  bool need_reopen = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Shard& s = shards_[shard];
    switch (s.health) {
      case ShardHealth::kClosed:
        return s.store;  // non-null by invariant (else health is open)
      case ShardHealth::kHalfOpen:
        // A probe is already in flight; stay out of its way.
        ++s.skipped;
        ++stats_.skipped_shard_ops;
        return nullptr;
      case ShardHealth::kOpen:
        ++s.skipped;
        ++stats_.skipped_shard_ops;
        if (s.skipped < config_.breaker_probe_after) return nullptr;
        s.health = ShardHealth::kHalfOpen;
        ++stats_.breaker_probes;
        need_reopen = s.store == nullptr;
        if (!need_reopen) return s.store;
        break;
    }
  }
  // Half-open probe on a shard with no usable Store: retry the open
  // outside the lock (directory may have come back).
  std::shared_ptr<Store> reopened;
  try {
    reopened = open_shard(shard);
  } catch (const std::exception&) {
    report_failure(shard);
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_[shard].store = reopened;
  }
  return reopened;
}

void ShardedStore::report_ok(unsigned shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  Shard& s = shards_[shard];
  s.consecutive_failures = 0;
  s.skipped = 0;
  s.health = ShardHealth::kClosed;
}

void ShardedStore::report_failure(unsigned shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  Shard& s = shards_[shard];
  ++stats_.shard_errors;
  ++s.consecutive_failures;
  const bool trip = s.health == ShardHealth::kHalfOpen ||
                    s.consecutive_failures >= config_.breaker_open_after;
  if (trip && s.health != ShardHealth::kOpen) {
    s.health = ShardHealth::kOpen;
    s.skipped = 0;
    ++stats_.breaker_opens;
  } else if (trip) {
    s.skipped = 0;
  }
}

ShardedStore::ShardGet ShardedStore::try_get(unsigned shard, const Key& key) {
  ShardGet out;
  const std::shared_ptr<Store> store = acquire(shard);
  if (store == nullptr) return out;
  try {
    out.result = store->get(key);
    out.attempted = true;
    report_ok(shard);
  } catch (const std::exception&) {
    report_failure(shard);
  }
  return out;
}

bool ShardedStore::try_put(unsigned shard, const Key& key,
                           const std::uint8_t* data, std::size_t len,
                           StoreErrc* errc_out) {
  const std::shared_ptr<Store> store = acquire(shard);
  if (store == nullptr) {
    if (errc_out != nullptr) *errc_out = StoreErrc::kIoError;
    return false;
  }
  try {
    store->put(key, data, len);
    report_ok(shard);
    return true;
  } catch (const StoreError& e) {
    if (errc_out != nullptr) *errc_out = e.code();
    report_failure(shard);
    return false;
  } catch (const std::exception&) {
    if (errc_out != nullptr) *errc_out = StoreErrc::kIoError;
    report_failure(shard);
    return false;
  }
}

// --------------------------------------------------------------- routing

std::vector<unsigned> ShardedStore::rank(const Key& key) const {
  struct Scored {
    std::uint64_t weight;
    unsigned shard;
  };
  std::vector<Scored> scored;
  scored.reserve(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    core::Fnv128 fnv;
    fnv.update_u64(key.lo);
    fnv.update_u64(key.hi);
    fnv.update_u64(s);
    const core::Hash128 h = fnv.digest();
    scored.push_back({h.lo ^ h.hi, s});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.weight != b.weight ? a.weight > b.weight : a.shard < b.shard;
  });
  std::vector<unsigned> out;
  out.reserve(scored.size());
  for (const Scored& sc : scored) out.push_back(sc.shard);
  return out;
}

Key ShardedStore::strip_key(const Key& key, unsigned index) {
  core::Fnv128 fnv;
  fnv.update_u64(key.lo);
  fnv.update_u64(key.hi);
  const char tag[] = "nc9-strip";
  fnv.update_bytes(reinterpret_cast<const std::uint8_t*>(tag), sizeof(tag));
  fnv.update_u64(index);
  const core::Hash128 h = fnv.digest();
  return Key{h.lo, h.hi};
}

// ------------------------------------------------------------------- get

GetResult ShardedStore::get(const Key& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.gets;
  }
  const std::vector<unsigned> ranking = rank(key);
  bool saw_corrupt = false;
  for (unsigned r = 0; r < ranking.size(); ++r) {
    ShardGet got = try_get(ranking[r], key);
    if (!got.attempted) continue;
    if (got.result.status == GetStatus::kCorrupt) {
      saw_corrupt = true;
      continue;
    }
    if (got.result.status != GetStatus::kHit) continue;
    HeadInfo head;
    if (!parse_head(got.result.payload, head)) {
      saw_corrupt = true;  // foreign bytes under our key; keep scanning
      continue;
    }
    if (head.type == kInlineHead) {
      std::vector<std::uint8_t> payload(
          got.result.payload.begin() + kInlineHeadBytes,
          got.result.payload.end());
      if (core::crc32(payload.data(), payload.size()) != head.crc) {
        saw_corrupt = true;
        continue;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
      if (r > 0) ++stats_.degraded_reads;
      return {GetStatus::kHit, std::move(payload)};
    }
    // Striped: the head told us the geometry; gather strips.
    return get_striped(key, ranking, head.k, head.m, head.total_len, head.crc,
                       r > 0);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  if (saw_corrupt) {
    ++stats_.unrecoverable_reads;
    return {GetStatus::kCorrupt, {}};
  }
  return {};
}

GetResult ShardedStore::get_striped(const Key& key,
                                    const std::vector<unsigned>& ranking,
                                    unsigned k, unsigned m,
                                    std::uint64_t total_len,
                                    std::uint32_t payload_crc,
                                    bool head_degraded) {
  const unsigned n = k + m;
  const std::size_t strip_len = strip_length(total_len, k);
  std::vector<std::vector<std::uint8_t>> strips(n);
  std::vector<unsigned> erased;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned home = ranking[i % ranking.size()];
    ShardGet got = try_get(home, strip_key(key, i));
    if (!got.attempted || got.result.status != GetStatus::kHit ||
        !parse_strip(got.result.payload, i, k, m, strip_len, strips[i]))
      erased.push_back(i);
  }
  const auto fail = [this]() -> GetResult {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    ++stats_.unrecoverable_reads;
    return {GetStatus::kCorrupt, {}};
  };
  if (erased.size() > m || n != codec_.total_strips() ||
      k != codec_.data_strips()) {
    // A geometry that does not match this codec can appear only through
    // marker tampering; refuse rather than mis-decode.
    if (erased.size() > m) return fail();
    try {
      core::ErasureCodec codec(k, m);
      codec.decode(strips, erased);
    } catch (const std::exception&) {
      return fail();
    }
  } else if (!erased.empty()) {
    try {
      codec_.decode(strips, erased);
    } catch (const std::exception&) {
      return fail();
    }
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(static_cast<std::size_t>(total_len));
  for (unsigned i = 0; i < k && payload.size() < total_len; ++i) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(strip_len, total_len - payload.size()));
    payload.insert(payload.end(), strips[i].begin(), strips[i].begin() + want);
  }
  if (payload.size() != total_len ||
      core::crc32(payload.data(), payload.size()) != payload_crc)
    return fail();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.hits;
  if (!erased.empty() || head_degraded) {
    ++stats_.degraded_reads;
    stats_.strips_reconstructed += erased.size();
  }
  return {GetStatus::kHit, std::move(payload)};
}

// ------------------------------------------------------------------- put

void ShardedStore::put(const Key& key, const std::uint8_t* data,
                       std::size_t len) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.puts;
  }
  const std::vector<unsigned> ranking = rank(key);
  const unsigned k = data_strips();
  const unsigned m = config_.parity;

  if (len < config_.stripe_threshold_bytes || k < 2) {
    // Inline: parity+1 byte-identical replicas on the ranking's head.
    const unsigned copies = std::min(config_.shards, m + 1);
    const std::vector<std::uint8_t> rec = inline_head_record(copies, data, len);
    unsigned ok = 0;
    StoreErrc last = StoreErrc::kIoError;
    for (unsigned r = 0; r < copies; ++r)
      if (try_put(ranking[r], key, rec.data(), rec.size(), &last)) ++ok;
    std::unique_lock<std::mutex> lock(mutex_);
    if (ok == 0) {
      ++stats_.failed_writes;
      lock.unlock();
      throw StoreError(last, "sharded store: no shard accepted inline put of " +
                                 key.hex());
    }
    ++stats_.inline_puts;
    if (ok < copies) ++stats_.degraded_writes;
    return;
  }

  // Striped: k data strips (zero-padded to equal length) + m parity.
  const std::size_t strip_len = strip_length(len, k);
  std::vector<std::vector<std::uint8_t>> data_strips_v(k);
  for (unsigned i = 0; i < k; ++i) {
    const std::size_t begin = std::min(len, i * strip_len);
    const std::size_t end = std::min(len, begin + strip_len);
    data_strips_v[i].assign(data + begin, data + end);
    data_strips_v[i].resize(strip_len, 0);
  }
  std::vector<std::vector<std::uint8_t>> parity_strips =
      codec_.encode(data_strips_v);

  // Strips land before any head: a head implies its stripe was attempted,
  // and a head-less strip is a scrub-visible orphan, never a wrong read.
  unsigned strip_failures = 0;
  StoreErrc last = StoreErrc::kIoError;
  for (unsigned i = 0; i < k + m; ++i) {
    const std::vector<std::uint8_t>& bytes =
        i < k ? data_strips_v[i] : parity_strips[i - k];
    const std::vector<std::uint8_t> rec =
        strip_record(i, k, m, bytes.data(), bytes.size());
    if (!try_put(ranking[i], strip_key(key, i), rec.data(), rec.size(), &last))
      ++strip_failures;
  }
  const std::vector<std::uint8_t> head =
      striped_head_record(k, m, len, core::crc32(data, len));
  unsigned heads_ok = 0;
  for (unsigned s = 0; s < config_.shards; ++s)
    if (try_put(s, key, head.data(), head.size(), &last)) ++heads_ok;

  std::unique_lock<std::mutex> lock(mutex_);
  if (heads_ok == 0 || strip_failures > m) {
    // Beyond reconstruction (or unreadable): the caller must know the
    // payload is NOT durable.
    ++stats_.failed_writes;
    lock.unlock();
    throw StoreError(last, "sharded store: striped put of " + key.hex() +
                               " lost " + std::to_string(strip_failures) +
                               " strips (parity " + std::to_string(m) + ")");
  }
  ++stats_.striped_puts;
  if (strip_failures > 0 || heads_ok < config_.shards)
    ++stats_.degraded_writes;
}

void ShardedStore::put(const Key& key, const std::vector<std::uint8_t>& payload) {
  put(key, payload.data(), payload.size());
}

// ----------------------------------------------------------------- erase

bool ShardedStore::erase(const Key& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.erases;
  }
  // Learn the geometry first so the strips can be purged too.
  HeadInfo head;
  bool have_head = false;
  for (unsigned s = 0; s < config_.shards && !have_head; ++s) {
    ShardGet got = try_get(s, key);
    if (got.attempted && got.result.status == GetStatus::kHit)
      have_head = parse_head(got.result.payload, head);
  }
  bool any = false;
  if (have_head && head.type == kStripedHead) {
    const std::vector<unsigned> ranking = rank(key);
    for (unsigned i = 0; i < head.k + head.m; ++i) {
      const Key sk = strip_key(key, i);
      const unsigned home = ranking[i % ranking.size()];
      const std::shared_ptr<Store> store = acquire(home);
      if (store == nullptr) continue;
      try {
        store->erase(sk);
        report_ok(home);
      } catch (const std::exception&) {
        report_failure(home);
      }
    }
  }
  for (unsigned s = 0; s < config_.shards; ++s) {
    const std::shared_ptr<Store> store = acquire(s);
    if (store == nullptr) continue;
    try {
      if (store->erase(key)) any = true;
      report_ok(s);
    } catch (const std::exception&) {
      report_failure(s);
    }
  }
  return any;
}

bool ShardedStore::contains(const Key& key) {
  for (unsigned s = 0; s < config_.shards; ++s) {
    const std::shared_ptr<Store> store = acquire(s);
    if (store == nullptr) continue;
    const bool held = store->contains(key);  // in-memory; cannot fail
    report_ok(s);
    if (held) return true;
  }
  return false;
}

// ----------------------------------------------------------------- scrub

void ShardedStore::scrub_inline(const Key& key, unsigned copies,
                                ScrubReport& rep) {
  const std::vector<unsigned> ranking = rank(key);
  copies = std::min(copies, config_.shards);
  // Find one intact replica to repair from.
  std::vector<std::uint8_t> good_record;
  std::vector<bool> shard_ok(config_.shards, false);
  for (unsigned s = 0; s < config_.shards; ++s) {
    ShardGet got = try_get(s, key);
    if (!got.attempted || got.result.status != GetStatus::kHit) continue;
    HeadInfo head;
    if (!parse_head(got.result.payload, head) || head.type != kInlineHead)
      continue;
    if (core::crc32(got.result.payload.data() + kInlineHeadBytes,
                    got.result.payload.size() - kInlineHeadBytes) != head.crc)
      continue;
    shard_ok[s] = true;
    if (good_record.empty()) good_record = std::move(got.result.payload);
  }
  if (good_record.empty()) {
    ++rep.unrecoverable;
    rep.full_redundancy = false;
    return;
  }
  for (unsigned r = 0; r < copies; ++r) {
    const unsigned home = ranking[r];
    if (shard_ok[home]) continue;
    ++rep.copies_missing;
    if (try_put(home, key, good_record.data(), good_record.size()))
      ++rep.copies_repaired;
    else
      rep.full_redundancy = false;
  }
}

void ShardedStore::scrub_striped(const Key& key, unsigned k, unsigned m,
                                 std::uint64_t total_len,
                                 std::uint32_t payload_crc,
                                 const std::vector<std::uint8_t>& head_record,
                                 ScrubReport& rep) {
  const std::vector<unsigned> ranking = rank(key);
  const unsigned n = k + m;
  const std::size_t strip_len = strip_length(total_len, k);
  std::vector<std::vector<std::uint8_t>> strips(n);
  std::vector<unsigned> erased;
  for (unsigned i = 0; i < n; ++i) {
    ++rep.strips_checked;
    const unsigned home = ranking[i % ranking.size()];
    ShardGet got = try_get(home, strip_key(key, i));
    if (!got.attempted || got.result.status != GetStatus::kHit ||
        !parse_strip(got.result.payload, i, k, m, strip_len, strips[i])) {
      erased.push_back(i);
      ++rep.strips_missing;
    }
  }
  if (erased.size() > m) {
    ++rep.unrecoverable;
    rep.full_redundancy = false;
    return;
  }
  if (!erased.empty()) {
    try {
      if (k == codec_.data_strips() && m == codec_.parity_strips()) {
        codec_.decode(strips, erased);
      } else {
        core::ErasureCodec codec(k, m);
        codec.decode(strips, erased);
      }
    } catch (const std::exception&) {
      ++rep.unrecoverable;
      rep.full_redundancy = false;
      return;
    }
    // Verify the reconstruction against the head CRC before writing
    // anything back -- a scrub must never "repair" wrong bytes into place.
    std::vector<std::uint8_t> payload;
    for (unsigned i = 0; i < k && payload.size() < total_len; ++i) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(strip_len, total_len - payload.size()));
      payload.insert(payload.end(), strips[i].begin(),
                     strips[i].begin() + want);
    }
    if (payload.size() != total_len ||
        core::crc32(payload.data(), payload.size()) != payload_crc) {
      ++rep.unrecoverable;
      rep.full_redundancy = false;
      return;
    }
    for (const unsigned i : erased) {
      const unsigned home = ranking[i % ranking.size()];
      const std::vector<std::uint8_t> rec =
          strip_record(i, k, m, strips[i].data(), strips[i].size());
      if (try_put(home, strip_key(key, i), rec.data(), rec.size()))
        ++rep.strips_repaired;
      else
        rep.full_redundancy = false;
    }
  }
  // Every shard re-learns the head (it is tiny and content addressing
  // dedupes the ones already present).
  for (unsigned s = 0; s < config_.shards; ++s) {
    ShardGet got = try_get(s, key);
    const bool have = got.attempted && got.result.status == GetStatus::kHit;
    if (have) continue;
    ++rep.heads_missing;
    if (try_put(s, key, head_record.data(), head_record.size()))
      ++rep.heads_repaired;
    else
      rep.full_redundancy = false;
  }
}

ScrubReport ShardedStore::scrub() {
  ScrubReport rep;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.scrubs;
  }
  // Pass 1: enumerate and classify every key on every reachable shard.
  std::unordered_set<Key, KeyHash> seen;
  std::unordered_map<Key, HeadInfo, KeyHash> heads;
  std::unordered_map<Key, std::vector<std::uint8_t>, KeyHash> head_records;
  std::unordered_set<Key, KeyHash> strip_keys_found;
  for (unsigned s = 0; s < config_.shards; ++s) {
    const std::shared_ptr<Store> store = acquire(s);
    if (store == nullptr) {
      ++rep.shards_down;
      rep.full_redundancy = false;
      continue;
    }
    report_ok(s);  // keys() below is in-memory; reaching the Store at all
                   // is the probe's success signal
    for (const Key& key : store->keys()) {
      if (!seen.insert(key).second) continue;
      ShardGet got = try_get(s, key);
      if (!got.attempted || got.result.status != GetStatus::kHit) continue;
      HeadInfo head;
      if (parse_head(got.result.payload, head)) {
        heads.emplace(key, head);
        if (head.type == kStripedHead)
          head_records.emplace(key, std::move(got.result.payload));
      } else if (!got.result.payload.empty() &&
                 got.result.payload[0] == kStripRecord) {
        strip_keys_found.insert(key);
      }
      // Anything else is foreign bytes; leave it alone.
    }
  }
  // Pass 2: verify and repair each artifact on its home shards.
  std::unordered_set<Key, KeyHash> expected_strips;
  for (const auto& [key, head] : heads) {
    ++rep.artifacts;
    if (head.type == kInlineHead) {
      scrub_inline(key, head.copies, rep);
    } else {
      for (unsigned i = 0; i < head.k + head.m; ++i)
        expected_strips.insert(strip_key(key, i));
      scrub_striped(key, head.k, head.m, head.total_len, head.crc,
                    head_records[key], rep);
    }
  }
  // Pass 3: strips whose stripe head no longer exists anywhere. Counted,
  // not deleted: an orphan is recoverable garbage, and a concurrent put's
  // strips-before-head window looks identical.
  for (const Key& sk : strip_keys_found)
    if (!expected_strips.contains(sk)) ++rep.orphan_strips;
  return rep;
}

// ------------------------------------------------------------ management

std::uint64_t ShardedStore::compact(double min_garbage_ratio) {
  std::uint64_t reclaimed = 0;
  for (unsigned s = 0; s < config_.shards; ++s) {
    const std::shared_ptr<Store> store = acquire(s);
    if (store == nullptr) continue;
    try {
      reclaimed += store->compact(min_garbage_ratio);
      report_ok(s);
    } catch (const std::exception&) {
      report_failure(s);
    }
  }
  return reclaimed;
}

FsckReport ShardedStore::fsck_shard(unsigned shard, bool repair) {
  if (shard >= config_.shards)
    throw StoreError(StoreErrc::kInvalid, "sharded store: no such shard");
  const std::shared_ptr<Store> store = acquire(shard);
  if (store == nullptr)
    throw StoreError(StoreErrc::kIoError,
                     "shard " + std::to_string(shard) + " is unavailable");
  try {
    FsckReport rep = store->fsck(repair);
    report_ok(shard);
    return rep;
  } catch (...) {
    report_failure(shard);
    throw;
  }
}

StoreStats ShardedStore::shard_stats(unsigned shard) {
  if (shard >= config_.shards)
    throw StoreError(StoreErrc::kInvalid, "sharded store: no such shard");
  const std::shared_ptr<Store> store = acquire(shard);
  if (store == nullptr)
    throw StoreError(StoreErrc::kIoError,
                     "shard " + std::to_string(shard) + " is unavailable");
  StoreStats st = store->stats();
  report_ok(shard);
  return st;
}

ShardedStats ShardedStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ShardedStats s = stats_;
  s.shards_degraded = 0;
  for (const Shard& shard : shards_)
    if (shard.health != ShardHealth::kClosed) ++s.shards_degraded;
  return s;
}

std::vector<ShardHealth> ShardedStore::shard_health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ShardHealth> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) out.push_back(shard.health);
  return out;
}

}  // namespace nc::store
