#include "store/store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/crc.h"
#include "store/io.h"

namespace nc::store {

namespace fs = std::filesystem;

namespace {

constexpr std::array<std::uint8_t, 4> kSegmentMagic = {'N', 'C', '9', 'A'};
constexpr std::array<std::uint8_t, 4> kManifestMagic = {'N', 'C', '9', 'M'};
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 13;  // magic + version + u64
// Record framing overhead: payload_len + key + trailer CRC.
constexpr std::size_t kRecordOverhead = 4 + 16 + 4;

constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpErase = 2;
constexpr std::uint8_t kOpRetire = 3;

constexpr std::size_t kPutBodySize = 1 + 16 + 8 + 8 + 4 + 4;
constexpr std::size_t kEraseBodySize = 1 + 16;
constexpr std::size_t kRetireBodySize = 1 + 8;

std::uint32_t read_le32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

/// Version-keyed hash in the manifest header, same role as the fleet
/// journal's config hash: a manifest written by an incompatible layout
/// refuses to replay instead of being misparsed.
std::uint64_t manifest_config_hash() {
  std::uint64_t h = 0xCBF29CE484222325ull;
  const char tag[] = "nc9-artifact-store";
  for (const char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  h ^= kFormatVersion;
  h *= 0x100000001B3ull;
  return h;
}

std::vector<std::uint8_t> manifest_header_bytes() {
  std::vector<std::uint8_t> out(kManifestMagic.begin(), kManifestMagic.end());
  out.push_back(kFormatVersion);
  put_u64(out, manifest_config_hash());
  return out;
}

std::vector<std::uint8_t> segment_header_bytes(std::uint64_t id) {
  std::vector<std::uint8_t> out(kSegmentMagic.begin(), kSegmentMagic.end());
  out.push_back(kFormatVersion);
  put_u64(out, id);
  return out;
}

/// Maps a negative errno from Io onto the typed error space: a full
/// device is its own category (retrying without freeing space is futile),
/// everything else is kIoError.
StoreErrc errc_of(int neg_errno) noexcept {
  switch (-neg_errno) {
    case ENOSPC:
    case EDQUOT:
    case EFBIG:
      return StoreErrc::kNoSpace;
    default:
      return StoreErrc::kIoError;
  }
}

[[noreturn]] void throw_io(int neg_errno, const std::string& what,
                           const std::string& path) {
  throw StoreError(errc_of(neg_errno),
                   what + " " + path + ": " + std::strerror(-neg_errno));
}

bool pread_all(Io& io, int fd, std::uint8_t* buf, std::size_t len,
               std::uint64_t off) {
  std::size_t done = 0;
  while (done < len) {
    const long n = io.pread(fd, buf + done, len - done, off + done);
    if (n <= 0) return false;  // error, or past end of file
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void pwrite_all(Io& io, int fd, const std::uint8_t* buf, std::size_t len,
                std::uint64_t off, const std::string& path) {
  std::size_t done = 0;
  while (done < len) {
    const long n = io.pwrite(fd, buf + done, len - done, off + done);
    if (n < 0) throw_io(static_cast<int>(n), "write failed:", path);
    if (n == 0)
      throw StoreError(StoreErrc::kIoError, "write stalled: " + path);
    done += static_cast<std::size_t>(n);
  }
}

/// Appends the whole buffer; returns 0 or a negative errno, with `done`
/// reporting how many bytes actually landed (so the caller can roll the
/// file back on a torn append).
int append_all(Io& io, int fd, const std::uint8_t* buf, std::size_t len,
               std::size_t& done) {
  done = 0;
  while (done < len) {
    const long n = io.append(fd, buf + done, len - done);
    if (n < 0) return static_cast<int>(n);
    if (n == 0) return -EIO;  // no progress; avoid an infinite loop
    done += static_cast<std::size_t>(n);
  }
  return 0;
}

std::uint64_t file_size_of(Io& io, int fd) {
  const long long n = io.file_size(fd);
  return n > 0 ? static_cast<std::uint64_t>(n) : 0;
}

std::string segment_file_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.nc9a",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Segment files present in `dir`, sorted by id.
std::vector<std::pair<std::uint64_t, std::string>> list_segment_files(
    Io& io, const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::vector<std::string> names;
  io.list_dir(dir, names);  // a listing failure reads as an empty store
  for (const std::string& name : names) {
    if (name.rfind("seg-", 0) != 0 || !name.ends_with(".nc9a")) continue;
    const std::string digits = name.substr(4, name.size() - 4 - 5);
    // 19 digits is the largest count that always fits a u64; anything
    // longer is a stray file, not a segment -- skip, don't throw.
    if (digits.empty() || digits.size() > 19 ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.emplace_back(std::stoull(digits), (fs::path(dir) / name).string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string Key::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Store::Segment::~Segment() {
  if (fd >= 0) ::close(fd);
}

// ----------------------------------------------------------------- open

Store::Store(StoreConfig config) : config_(std::move(config)) {
  if (config_.dir.empty())
    throw StoreError(StoreErrc::kInvalid, "store: empty directory path");
  io_ = config_.io != nullptr ? config_.io : &Io::posix();
  if (const int err = io_->create_dirs(config_.dir))
    throw_io(err, "cannot create store directory", config_.dir);
  manifest_path_ = (fs::path(config_.dir) / "manifest.nc9m").string();
  for (const auto& [id, path] : list_segment_files(*io_, config_.dir))
    next_segment_id_ = std::max(next_segment_id_, id + 1);
  replay_manifest();
  rewrite_manifest_if_bloated();
}

Store::~Store() {
  std::unique_lock<std::mutex> clock(compact_mutex_);
  closing_ = true;
  compact_cv_.notify_all();
  compact_cv_.wait(clock,
                   [this] { return !compact_scheduled_ && !compact_busy_; });
  clock.unlock();
  std::lock_guard<std::mutex> lock(mutex_);
  if (manifest_fd_ >= 0) io_->close_fd(manifest_fd_);
  manifest_fd_ = -1;
}

void Store::replay_manifest() {
  std::vector<std::uint8_t> bytes;
  {
    const int fd = io_->open_read(manifest_path_);
    if (fd >= 0) {
      const long long size = io_->file_size(fd);
      if (size < 0) {
        io_->close_fd(fd);
        throw_io(static_cast<int>(size), "cannot stat store manifest",
                 manifest_path_);
      }
      bytes.resize(static_cast<std::size_t>(size));
      if (!bytes.empty() &&
          !pread_all(*io_, fd, bytes.data(), bytes.size(), 0)) {
        io_->close_fd(fd);
        throw StoreError(StoreErrc::kIoError,
                         "cannot read store manifest " + manifest_path_);
      }
      io_->close_fd(fd);
    } else if (fd != -ENOENT) {
      throw_io(fd, "cannot open store manifest", manifest_path_);
    }
  }

  const std::vector<std::uint8_t> header = manifest_header_bytes();
  if (bytes.size() < kHeaderSize) {
    // Missing manifest, or a kill mid-header-write while the store was
    // being created (nothing could have been stored yet). Anything else --
    // a short foreign file -- must not be clobbered.
    if (!std::equal(bytes.begin(), bytes.end(), header.begin()))
      throw StoreError(StoreErrc::kCorrupt,
                       manifest_path_ +
                           " is not a store manifest (bad magic)");
    open_manifest_for_append(0, bytes.size());
    std::size_t done = 0;
    if (const int err =
            append_all(*io_, manifest_fd_, header.data(), header.size(), done))
      throw_io(err, "cannot write store manifest header", manifest_path_);
    manifest_bytes_ = header.size();
    return;
  }
  if (!std::equal(kManifestMagic.begin(), kManifestMagic.end(), bytes.begin()))
    throw StoreError(StoreErrc::kCorrupt,
                     manifest_path_ + " is not a store manifest (bad magic)");
  if (bytes[4] != kFormatVersion)
    throw StoreError(StoreErrc::kCorrupt,
                     manifest_path_ +
                         ": unsupported store manifest version");
  if (read_le64(bytes.data() + 5) != manifest_config_hash())
    throw StoreError(StoreErrc::kCorrupt,
                     manifest_path_ +
                         ": manifest belongs to a different store layout");
  stats_.recovered = true;

  // Replay: walk records front to back, stopping at the first record whose
  // length or CRC fails -- everything past it is a torn tail (kill
  // mid-append) or tampering and is truncated away below.
  struct PendingLoc {
    std::uint64_t segment = 0;
    std::uint64_t offset = 0;
    std::uint32_t payload_len = 0;
    std::uint32_t record_crc = 0;
  };
  std::unordered_map<Key, PendingLoc, KeyHash> pending;
  std::unordered_set<std::uint64_t> retired;
  std::size_t off = kHeaderSize;
  std::size_t valid_end = kHeaderSize;
  while (bytes.size() - off >= 8) {
    const std::uint32_t len = read_le32(bytes.data() + off);
    if (len == 0 || len > bytes.size() - off - 8) break;
    const std::uint8_t* body = bytes.data() + off + 4;
    if (core::crc32(body, len) != read_le32(body + len)) break;
    const std::uint8_t op = body[0];
    if (op == kOpPut && len == kPutBodySize) {
      const Key key{read_le64(body + 1), read_le64(body + 9)};
      PendingLoc loc;
      loc.segment = read_le64(body + 17);
      loc.offset = read_le64(body + 25);
      loc.payload_len = read_le32(body + 33);
      loc.record_crc = read_le32(body + 37);
      pending[key] = loc;
      tombstones_.erase(key);
    } else if (op == kOpErase && len == kEraseBodySize) {
      const Key key{read_le64(body + 1), read_le64(body + 9)};
      pending.erase(key);
      tombstones_.insert(key);
    } else if (op == kOpRetire && len == kRetireBodySize) {
      retired.insert(read_le64(body + 1));
    } else {
      // A record with a valid CRC but a malformed body is not torn damage;
      // refuse to guess.
      throw StoreError(StoreErrc::kCorrupt,
                       manifest_path_ + ": manifest holds a malformed record");
    }
    ++stats_.replayed_records;
    off += 8 + len;
    valid_end = off;
  }
  stats_.torn_bytes_discarded = bytes.size() - valid_end;

  // Materialize the referenced segments and drop entries the segment files
  // cannot back (manifest/segment disagreement degrades, never lies).
  for (const auto& [key, loc] : pending) {
    if (retired.contains(loc.segment)) {
      ++stats_.dropped_at_open;
      continue;
    }
    auto seg_it = segments_.find(loc.segment);
    if (seg_it == segments_.end()) {
      const std::string path =
          (fs::path(config_.dir) / segment_file_name(loc.segment)).string();
      const int fd = io_->open_read(path);
      if (fd < 0) {
        ++stats_.dropped_at_open;
        continue;
      }
      auto seg = std::make_shared<Segment>();
      seg->id = loc.segment;
      seg->path = path;
      seg->fd = fd;
      seg->sealed = true;
      seg->size = file_size_of(*io_, fd);
      seg_it = segments_.emplace(loc.segment, std::move(seg)).first;
    }
    const std::shared_ptr<Segment>& seg = seg_it->second;
    const std::uint64_t rec_size = kRecordOverhead + loc.payload_len;
    if (loc.offset < kHeaderSize || loc.offset + rec_size > seg->size) {
      ++stats_.dropped_at_open;
      continue;
    }
    index_[key] = Location{seg, loc.offset, loc.payload_len, loc.record_crc};
    seg->live_bytes += rec_size;
    ++seg->live_records;
  }

  open_manifest_for_append(valid_end, bytes.size());
  manifest_bytes_ = valid_end;
}

void Store::open_manifest_for_append(std::uint64_t valid_end,
                                     std::uint64_t file_size) {
  // A kill can leave bytes past the verified prefix (torn tail, or a
  // partial header from a kill at store creation). O_APPEND would write
  // after them, so cut the file back before appending.
  if (file_size > valid_end) {
    if (const int err = io_->truncate_file(manifest_path_, valid_end))
      throw_io(err, "cannot truncate store manifest", manifest_path_);
  }
  const int fd = io_->open_append(manifest_path_);
  if (fd < 0) throw_io(fd, "cannot append to store manifest", manifest_path_);
  manifest_fd_ = fd;
}

void Store::rewrite_manifest_if_bloated() {
  // Compaction and churn append put/erase records without bound; once the
  // manifest carries 4x more records than the store has live state, rewrite
  // it as one snapshot (tmp + rename, atomic on POSIX). Open-time only, so
  // no reader or writer can observe the swap.
  const std::uint64_t state = index_.size() + tombstones_.size();
  if (stats_.replayed_records <= 64 ||
      stats_.replayed_records <= 4 * state)
    return;
  const std::string tmp = manifest_path_ + ".tmp";
  const int fd = io_->open_rw_trunc(tmp);
  if (fd < 0) throw_io(fd, "cannot write", tmp);
  std::vector<std::uint8_t> out = manifest_header_bytes();
  auto frame = [&out](const std::vector<std::uint8_t>& body) {
    put_u32(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
    put_u32(out, core::crc32(body.data(), body.size()));
  };
  for (const auto& [key, loc] : index_) {
    std::vector<std::uint8_t> body;
    body.push_back(kOpPut);
    put_u64(body, key.lo);
    put_u64(body, key.hi);
    put_u64(body, loc.segment->id);
    put_u64(body, loc.offset);
    put_u32(body, loc.payload_len);
    put_u32(body, loc.record_crc);
    frame(body);
  }
  for (const Key& key : tombstones_) {
    std::vector<std::uint8_t> body;
    body.push_back(kOpErase);
    put_u64(body, key.lo);
    put_u64(body, key.hi);
    frame(body);
  }
  pwrite_all(*io_, fd, out.data(), out.size(), 0, tmp);
  io_->fsync_fd(fd);
  io_->close_fd(fd);
  if (const int err = io_->rename_file(tmp, manifest_path_))
    throw_io(err, "cannot replace store manifest", manifest_path_);
  if (manifest_fd_ >= 0) io_->close_fd(manifest_fd_);
  open_manifest_for_append(out.size(), out.size());
  manifest_bytes_ = out.size();
}

// ------------------------------------------------------------- mutation

void Store::ensure_active_segment_locked() {
  if (active_ != nullptr) return;
  const std::uint64_t id = next_segment_id_++;
  auto seg = std::make_shared<Segment>();
  seg->id = id;
  seg->path = (fs::path(config_.dir) / segment_file_name(id)).string();
  seg->fd = io_->open_rw_trunc(seg->path);
  if (seg->fd < 0) throw_io(seg->fd, "cannot create store segment", seg->path);
  const std::vector<std::uint8_t> header = segment_header_bytes(id);
  pwrite_all(*io_, seg->fd, header.data(), header.size(), 0, seg->path);
  seg->size = header.size();
  segments_.emplace(id, seg);
  active_ = std::move(seg);
}

void Store::seal_active_locked() {
  if (active_ == nullptr) return;
  active_->sealed = true;
  active_ = nullptr;
}

Store::Location Store::append_record_locked(const Key& key,
                                            const std::uint8_t* data,
                                            std::size_t len) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kRecordOverhead + len);
  put_u32(rec, static_cast<std::uint32_t>(len));
  put_u64(rec, key.lo);
  put_u64(rec, key.hi);
  rec.insert(rec.end(), data, data + len);
  const std::uint32_t crc = core::crc32(rec.data() + 4, 16 + len);
  put_u32(rec, crc);
  // Segment bytes land (and optionally reach disk) before the manifest
  // record that references them ever exists. A failure part-way leaves
  // garbage past `size`, which the next append simply overwrites; the
  // manifest never references it.
  pwrite_all(*io_, active_->fd, rec.data(), rec.size(), active_->size,
             active_->path);
  if (config_.fsync_writes) {
    if (const int err = io_->fsync_fd(active_->fd))
      throw_io(err, "fsync failed on store segment", active_->path);
  }
  Location loc{active_, active_->size, static_cast<std::uint32_t>(len), crc};
  active_->size += rec.size();
  return loc;
}

void Store::append_manifest_locked(const std::vector<std::uint8_t>& body) {
  if (manifest_broken_)
    throw StoreError(StoreErrc::kIoError,
                     "store manifest has torn bytes after a failed append: " +
                         manifest_path_);
  std::vector<std::uint8_t> out;
  out.reserve(8 + body.size());
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  put_u32(out, core::crc32(body.data(), body.size()));
  std::size_t done = 0;
  int err = append_all(*io_, manifest_fd_, out.data(), out.size(), done);
  if (err == 0 && config_.fsync_writes) {
    // An unsynced record is indistinguishable from an unwritten one after
    // power loss; treat fsync failure exactly like a torn append.
    if (const int sync_err = io_->fsync_fd(manifest_fd_)) {
      err = sync_err;
      done = out.size();
    }
  }
  if (err != 0) {
    // Roll the log back to its last good end. O_APPEND would otherwise
    // write the NEXT record after these torn bytes, corrupting every
    // record that follows -- replay stops at the first bad frame.
    if (done > 0 && io_->truncate_file(manifest_path_, manifest_bytes_) != 0)
      manifest_broken_ = true;  // failed-stop: all later appends refuse
    throw_io(err, "manifest append failed:", manifest_path_);
  }
  manifest_bytes_ += out.size();
}

void Store::manifest_put_locked(const Key& key, const Location& loc) {
  std::vector<std::uint8_t> body;
  body.reserve(kPutBodySize);
  body.push_back(kOpPut);
  put_u64(body, key.lo);
  put_u64(body, key.hi);
  put_u64(body, loc.segment->id);
  put_u64(body, loc.offset);
  put_u32(body, loc.payload_len);
  put_u32(body, loc.record_crc);
  append_manifest_locked(body);
}

void Store::manifest_erase_locked(const Key& key) {
  std::vector<std::uint8_t> body;
  body.reserve(kEraseBodySize);
  body.push_back(kOpErase);
  put_u64(body, key.lo);
  put_u64(body, key.hi);
  append_manifest_locked(body);
}

void Store::manifest_retire_locked(std::uint64_t segment_id) {
  std::vector<std::uint8_t> body;
  body.reserve(kRetireBodySize);
  body.push_back(kOpRetire);
  put_u64(body, segment_id);
  append_manifest_locked(body);
}

void Store::drop_entry_locked(const Key& key, const Location& loc) {
  loc.segment->live_bytes -= kRecordOverhead + loc.payload_len;
  --loc.segment->live_records;
  index_.erase(key);
  tombstones_.insert(key);
  manifest_erase_locked(key);
}

void Store::put(const Key& key, const std::uint8_t* data, std::size_t len) {
  if (len > (std::uint32_t{1} << 30))
    throw StoreError(StoreErrc::kInvalid, "store: payload too large");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.puts;
    if (index_.contains(key)) {
      // Content-addressed: the stored bytes are already these bytes.
      ++stats_.duplicate_puts;
      return;
    }
    ensure_active_segment_locked();
    const Location loc = append_record_locked(key, data, len);
    manifest_put_locked(key, loc);
    index_.emplace(key, loc);
    tombstones_.erase(key);
    active_->live_bytes += kRecordOverhead + len;
    ++active_->live_records;
    if (active_->size >= config_.segment_target_bytes) seal_active_locked();
  }
  maybe_schedule_compaction();
}

void Store::put(const Key& key, const std::vector<std::uint8_t>& payload) {
  put(key, payload.data(), payload.size());
}

bool Store::erase(const Key& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    ++stats_.erases;
    drop_entry_locked(key, it->second);
  }
  maybe_schedule_compaction();
  return true;
}

bool Store::contains(const Key& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.contains(key);
}

std::vector<Key> Store::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Key> out;
  out.reserve(index_.size());
  for (const auto& [key, loc] : index_) out.push_back(key);
  return out;
}

// ---------------------------------------------------------------- lookup

bool Store::read_record(const Location& loc, const Key& key,
                        std::vector<std::uint8_t>& payload) const {
  const std::size_t rec_size = kRecordOverhead + loc.payload_len;
  std::vector<std::uint8_t> buf(rec_size);
  if (!pread_all(*io_, loc.segment->fd, buf.data(), rec_size, loc.offset))
    return false;
  if (read_le32(buf.data()) != loc.payload_len) return false;
  if (read_le64(buf.data() + 4) != key.lo ||
      read_le64(buf.data() + 12) != key.hi)
    return false;
  const std::uint32_t crc = core::crc32(buf.data() + 4, 16 + loc.payload_len);
  if (crc != read_le32(buf.data() + 20 + loc.payload_len) ||
      crc != loc.record_crc)
    return false;
  payload.assign(buf.begin() + 20, buf.begin() + 20 + loc.payload_len);
  return true;
}

GetResult Store::get(const Key& key) {
  Location loc;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.gets;
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return {};
    }
    loc = it->second;  // pins the segment via shared_ptr
  }
  std::vector<std::uint8_t> payload;
  if (read_record(loc, key, payload)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return {GetStatus::kHit, std::move(payload)};
  }
  // Revalidation failed: degrade to a miss and tombstone the record so it
  // is never served again, in this process or after a restart.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt_drops;
    ++stats_.misses;
    const auto it = index_.find(key);
    if (it != index_.end() && it->second.segment == loc.segment &&
        it->second.offset == loc.offset)
      drop_entry_locked(key, it->second);
  }
  return {GetStatus::kCorrupt, {}};
}

// ------------------------------------------------------------ compaction

std::uint64_t Store::dead_bytes_locked(const Segment& seg) const {
  return seg.size - kHeaderSize - seg.live_bytes;
}

std::shared_ptr<Store::Segment> Store::pick_victim_locked(
    double min_garbage_ratio) const {
  std::shared_ptr<Segment> best;
  double best_ratio = -1.0;
  for (const auto& [id, seg] : segments_) {
    if (!seg->sealed) continue;
    const std::uint64_t dead = dead_bytes_locked(*seg);
    if (dead == 0) continue;
    const std::uint64_t total = seg->size - kHeaderSize;
    const double ratio =
        total == 0 ? 1.0
                   : static_cast<double>(dead) / static_cast<double>(total);
    if (ratio < min_garbage_ratio) continue;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = seg;
    }
  }
  return best;
}

std::uint64_t Store::compact(double min_garbage_ratio) {
  {
    std::unique_lock<std::mutex> clock(compact_mutex_);
    compact_cv_.wait(clock, [this] { return !compact_busy_ || closing_; });
    if (closing_) return 0;
    compact_busy_ = true;
  }
  std::uint64_t reclaimed = 0;
  try {
    for (;;) {
      {
        std::lock_guard<std::mutex> clock(compact_mutex_);
        if (closing_) break;
      }
      std::shared_ptr<Segment> victim;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        victim = pick_victim_locked(min_garbage_ratio);
      }
      if (victim == nullptr) break;
      const std::uint64_t got = compact_segment(victim);
      if (got == 0) break;  // no progress; avoid re-picking the same victim
      reclaimed += got;
    }
  } catch (...) {
    // An I/O failure mid-rewrite (dying disk, injected fault) must not
    // leave compaction wedged busy forever; release and let the caller
    // decide what the error means.
    std::lock_guard<std::mutex> clock(compact_mutex_);
    compact_busy_ = false;
    compact_cv_.notify_all();
    throw;
  }
  {
    // Notify while holding the lock: ~Store may destroy the CV as soon as
    // it can observe the predicate, which it cannot until we release.
    std::lock_guard<std::mutex> clock(compact_mutex_);
    compact_busy_ = false;
    compact_cv_.notify_all();
  }
  return reclaimed;
}

std::uint64_t Store::compact_segment(const std::shared_ptr<Segment>& victim) {
  // Snapshot the victim's live entries; the victim is sealed, so no new
  // record can land in it while we work.
  std::vector<std::pair<Key, Location>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, loc] : index_)
      if (loc.segment == victim) live.emplace_back(key, loc);
  }
  for (const auto& [key, old] : live) {
    // Read outside the lock (concurrent gets proceed), swap under it.
    std::vector<std::uint8_t> payload;
    const bool ok = read_record(old, key, payload);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end() || it->second.segment != victim ||
        it->second.offset != old.offset)
      continue;  // raced with an erase or a corrupt-drop; nothing to move
    if (!ok) {
      // A live record that no longer verifies: same degradation as get().
      ++stats_.corrupt_drops;
      drop_entry_locked(key, it->second);
      continue;
    }
    ensure_active_segment_locked();
    const Location moved =
        append_record_locked(key, payload.data(), payload.size());
    manifest_put_locked(key, moved);
    it->second = moved;
    victim->live_bytes -= kRecordOverhead + old.payload_len;
    --victim->live_records;
    active_->live_bytes += kRecordOverhead + payload.size();
    ++active_->live_records;
    ++stats_.records_moved;
    if (active_->size >= config_.segment_target_bytes) seal_active_locked();
  }
  std::uint64_t file_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (victim->live_records != 0) return 0;  // defensive; cannot happen
    segments_.erase(victim->id);
    manifest_retire_locked(victim->id);
    file_bytes = victim->size;
    // Readers that pinned the victim before the swap keep reading through
    // their open fd; the name disappears now, the inode when they let go.
    io_->unlink_file(victim->path);
    ++stats_.compactions;
    stats_.bytes_reclaimed += file_bytes;
  }
  return file_bytes;
}

void Store::maybe_schedule_compaction() {
  if (!config_.auto_compact) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pick_victim_locked(config_.compact_garbage_ratio) == nullptr) return;
  }
  if (config_.pool == nullptr) {
    try {
      compact(config_.compact_garbage_ratio);
    } catch (const std::exception&) {
      // Housekeeping is best-effort: the put/erase that triggered it has
      // already succeeded, so its caller must not see a compaction error.
    }
    return;
  }
  {
    std::lock_guard<std::mutex> clock(compact_mutex_);
    if (closing_ || compact_scheduled_) return;
    compact_scheduled_ = true;
  }
  config_.pool->submit([this] {
    try {
      compact(config_.compact_garbage_ratio);
    } catch (const std::exception&) {
      // Background compaction has no caller to inform; the failed shard
      // surfaces through the mutation path (and the sharded breaker), not
      // by crashing the pool thread.
    }
    // Notify under the lock; see compact(). After the guard releases, this
    // task never touches the Store again, so ~Store is free to proceed.
    std::lock_guard<std::mutex> clock(compact_mutex_);
    compact_scheduled_ = false;
    compact_cv_.notify_all();
  });
}

// ------------------------------------------------------------------ fsck

FsckReport Store::fsck(bool repair) {
  // Quiesce compaction: fsck's cross-check must see a stable mapping.
  {
    std::unique_lock<std::mutex> clock(compact_mutex_);
    compact_cv_.wait(clock, [this] { return !compact_busy_; });
    compact_busy_ = true;
  }
  FsckReport rep;
  try {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, path] : list_segment_files(*io_, config_.dir)) {
      ++rep.segments_scanned;
      const auto known = segments_.find(id);
      std::shared_ptr<Segment> seg =
          known != segments_.end() ? known->second : nullptr;
      int fd = seg != nullptr ? seg->fd : -1;
      bool local_fd = false;
      if (fd < 0) {
        fd = io_->open_read(path);
        if (fd < 0) continue;
        local_fd = true;
      }
      const std::uint64_t fsize = file_size_of(*io_, fd);

      struct Found {
        Key key;
        std::uint64_t offset;
        std::uint32_t len;
        std::uint32_t crc;
      };
      std::vector<Found> found;
      std::uint64_t off = kHeaderSize;
      while (off + kRecordOverhead <= fsize) {
        std::uint8_t len_buf[4];
        if (!pread_all(*io_, fd, len_buf, 4, off)) break;
        const std::uint32_t len = read_le32(len_buf);
        if (off + kRecordOverhead + len > fsize) {
          // Unparseable tail: a kill mid-segment-append, or a flipped
          // length field. Either way the walk cannot continue safely.
          rep.torn_segment_bytes += fsize - off;
          break;
        }
        ++rep.records_scanned;
        std::vector<std::uint8_t> buf(kRecordOverhead + len);
        if (!pread_all(*io_, fd, buf.data(), buf.size(), off)) break;
        const std::uint32_t crc = core::crc32(buf.data() + 4, 16 + len);
        if (crc != read_le32(buf.data() + 20 + len)) {
          ++rep.corrupt_records;
        } else {
          found.push_back(Found{
              Key{read_le64(buf.data() + 4), read_le64(buf.data() + 12)},
              off, len, crc});
        }
        off += kRecordOverhead + len;
      }

      std::uint64_t live_here = 0;
      for (const Found& f : found) {
        const auto it = index_.find(f.key);
        if (it != index_.end() && it->second.segment != nullptr &&
            it->second.segment->id == id && it->second.offset == f.offset) {
          ++live_here;
          continue;
        }
        if (it != index_.end()) {
          ++rep.duplicate_records;  // an older dead copy; garbage
          continue;
        }
        if (tombstones_.contains(f.key)) continue;  // deliberately dead
        ++rep.orphan_records;
        if (!repair) continue;
        // Re-index the orphan. Sound because content addressing makes any
        // CRC-valid record for a key byte-identical to what a fresh
        // compute would produce.
        if (seg == nullptr) {
          seg = std::make_shared<Segment>();
          seg->id = id;
          seg->path = path;
          seg->fd = fd;
          seg->sealed = true;
          seg->size = fsize;
          segments_.emplace(id, seg);
          local_fd = false;  // adopted
        }
        index_[f.key] = Location{seg, f.offset, f.len, f.crc};
        seg->live_bytes += kRecordOverhead + f.len;
        ++seg->live_records;
        ++live_here;
        manifest_put_locked(f.key, index_[f.key]);
        ++rep.orphans_recovered;
        rep.repaired = true;
      }

      // A file with nothing live and no append handle is a stray: a fully
      // compacted segment whose unlink was lost to a crash, or pure
      // garbage.
      const bool is_active = seg != nullptr && seg == active_;
      if (live_here == 0 && !is_active &&
          (seg == nullptr || seg->live_records == 0)) {
        ++rep.stray_segments;
        if (repair) {
          if (seg != nullptr) {
            segments_.erase(id);
            manifest_retire_locked(id);
          }
          io_->unlink_file(path);
          ++rep.stray_segments_removed;
          rep.repaired = true;
          local_fd = local_fd && seg == nullptr;
        }
      }
      if (local_fd && fd >= 0) io_->close_fd(fd);
    }

    // Dangling check: every index entry must still verify end to end.
    std::vector<std::pair<Key, Location>> entries(index_.begin(),
                                                  index_.end());
    for (const auto& [key, loc] : entries) {
      std::vector<std::uint8_t> payload;
      if (read_record(loc, key, payload)) continue;
      ++rep.dangling_entries;
      if (repair) {
        ++stats_.corrupt_drops;
        drop_entry_locked(key, loc);
        rep.repaired = true;
      }
    }
  } catch (...) {
    // Same discipline as compact(): never leave the busy flag wedged.
    std::lock_guard<std::mutex> clock(compact_mutex_);
    compact_busy_ = false;
    compact_cv_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> clock(compact_mutex_);
    compact_busy_ = false;
    compact_cv_.notify_all();
  }
  rep.clean = rep.dangling_entries == 0 && rep.orphan_records == 0 &&
              rep.stray_segments == 0;
  return rep;
}

// ----------------------------------------------------------------- stats

StoreStats Store::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats s = stats_;
  s.records = index_.size();
  s.segments = segments_.size();
  s.tombstones = tombstones_.size();
  s.manifest_bytes = manifest_bytes_;
  s.live_bytes = 0;
  s.dead_bytes = 0;
  for (const auto& [id, seg] : segments_) {
    s.live_bytes += seg->live_bytes;
    s.dead_bytes += dead_bytes_locked(*seg);
  }
  return s;
}

}  // namespace nc::store
