#include "core/crc.h"

#include <array>

namespace nc::core {

namespace {

// Slice-by-8 lookup tables. Table 0 is the classic per-byte table; table
// k maps a byte that still has k more table-0 steps ahead of it, so eight
// bytes fold into the CRC with eight independent lookups and no serial
// per-byte dependency chain.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

constexpr CrcTables make_tables() {
  CrcTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k)
    for (std::uint32_t i = 0; i < 256; ++i)
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
  return t;
}

constexpr CrcTables kTables = make_tables();

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t len) noexcept {
  std::uint32_t crc = state;
  while (len >= 8) {
    const std::uint32_t lo = crc ^ load_le32(data);
    const std::uint32_t hi = load_le32(data + 4);
    crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
          kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
          kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    data += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i)
    crc = kTables[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

}  // namespace nc::core
