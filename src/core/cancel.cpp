#include "core/cancel.h"

namespace nc::core {

Deadline Deadline::after(std::chrono::nanoseconds budget) {
  Deadline d;
  d.at_ = std::chrono::steady_clock::now() + budget;
  d.limited_ = true;
  return d;
}

bool Deadline::expired() const noexcept {
  return limited_ && std::chrono::steady_clock::now() >= at_;
}

const char* to_string(WatchdogTrip trip) noexcept {
  switch (trip) {
    case WatchdogTrip::kNone: return "none";
    case WatchdogTrip::kStepBudget: return "step budget exhausted";
    case WatchdogTrip::kDeadline: return "deadline expired";
    case WatchdogTrip::kCancelled: return "cancelled";
  }
  return "unknown";
}

WatchdogTrip Watchdog::tick(std::size_t steps) noexcept {
  if (trip_ != WatchdogTrip::kNone) return trip_;
  steps_ += steps;
  if (max_steps_ != 0 && steps_ > max_steps_) {
    trip_ = WatchdogTrip::kStepBudget;
    return trip_;
  }
  // The clock and the cancel flag are orders of magnitude more expensive
  // than the step counter, so poll them only every kPollInterval steps.
  if (steps_ >= next_poll_) {
    next_poll_ = steps_ + kPollInterval;
    return check();
  }
  return WatchdogTrip::kNone;
}

WatchdogTrip Watchdog::check() noexcept {
  if (trip_ != WatchdogTrip::kNone) return trip_;
  if (cancel_ != nullptr && cancel_->cancelled())
    trip_ = WatchdogTrip::kCancelled;
  else if (deadline_.expired())
    trip_ = WatchdogTrip::kDeadline;
  return trip_;
}

}  // namespace nc::core
