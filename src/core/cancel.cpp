#include "core/cancel.h"

namespace nc::core {

Deadline Deadline::after(std::chrono::nanoseconds budget,
                         const Clock* clock) {
  Deadline d;
  d.clock_ = clock;
  d.at_ = d.now() + budget;
  d.limited_ = true;
  return d;
}

Deadline Deadline::at(Clock::time_point at, const Clock* clock) {
  Deadline d;
  d.clock_ = clock;
  d.at_ = at;
  d.limited_ = true;
  return d;
}

Clock::time_point Deadline::now() const noexcept {
  return clock_ != nullptr ? clock_->now()
                           : std::chrono::steady_clock::now();
}

bool Deadline::expired() const noexcept { return limited_ && now() >= at_; }

std::chrono::nanoseconds Deadline::remaining() const noexcept {
  if (!limited_) return std::chrono::nanoseconds::max();
  const auto left = at_ - now();
  return left.count() < 0 ? std::chrono::nanoseconds{0} : left;
}

const char* to_string(WatchdogTrip trip) noexcept {
  switch (trip) {
    case WatchdogTrip::kNone: return "none";
    case WatchdogTrip::kStepBudget: return "step budget exhausted";
    case WatchdogTrip::kDeadline: return "deadline expired";
    case WatchdogTrip::kCancelled: return "cancelled";
  }
  return "unknown";
}

WatchdogTrip Watchdog::tick(std::size_t steps) noexcept {
  if (trip_ != WatchdogTrip::kNone) return trip_;
  steps_ += steps;
  if (max_steps_ != 0 && steps_ > max_steps_) {
    trip_ = WatchdogTrip::kStepBudget;
    return trip_;
  }
  // The clock and the cancel flag are orders of magnitude more expensive
  // than the step counter, so poll them only every kPollInterval steps.
  if (steps_ >= next_poll_) {
    next_poll_ = steps_ + kPollInterval;
    return check();
  }
  return WatchdogTrip::kNone;
}

WatchdogTrip Watchdog::check() noexcept {
  if (trip_ != WatchdogTrip::kNone) return trip_;
  if (cancel_ != nullptr && cancel_->cancelled())
    trip_ = WatchdogTrip::kCancelled;
  else if (deadline_.expired())
    trip_ = WatchdogTrip::kDeadline;
  return trip_;
}

}  // namespace nc::core
