#include "core/thread_pool.h"

namespace nc::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future, never escape here
  }
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace nc::core
