#include "core/hash.h"

#include <cstdio>

namespace nc::core {

std::string Hash128::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Hash128 fnv128(const std::uint8_t* data, std::size_t len) noexcept {
  Fnv128 fnv;
  fnv.update_bytes(data, len);
  return fnv.digest();
}

}  // namespace nc::core
