// Cooperative cancellation and bounded-progress watchdogs.
//
// Long decode loops must never be able to spin without progress: a crafted
// or corrupted TE stream is attacker-controlled input, and a fleet session
// runs for hours on hardware the operator cannot single-step. The three
// primitives here make every such loop interruptible and budgeted:
//
//  * CancelToken -- a thread-safe flag an operator (or the fleet manager)
//    raises to stop in-flight work at the next check point;
//  * Deadline    -- a wall-clock cut-off on the steady clock;
//  * Watchdog    -- a per-run step budget combined with an optional deadline
//    and cancel token. Work loops call tick() once per unit of work (one FSM
//    transition, one streamed symbol); a kNone result means "keep going",
//    anything else names why the run must stop.
//
// The watchdog itself never throws: it has no opinion about the caller's
// error taxonomy. Decode paths convert a trip into the typed
// codec::DecodeError (DecodeFault::kWatchdogExpired) so the session retry /
// circuit-breaker machinery handles a runaway decode exactly like any other
// detected corruption.
//
// Determinism note: the step budget is a pure function of the work done, so
// verdicts guarded only by steps are reproducible. Deadlines and cancel
// tokens are inherently racy against the work -- the fleet manager keeps
// them out of anything that must replay bit-identically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>

#include "core/clock.h"

namespace nc::core {

/// A latch another thread raises to request cooperative cancellation.
/// Raising is idempotent; the flag never resets.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// A wall-clock cut-off. Default-constructed deadlines are unlimited
/// (never expire). Reads the steady clock unless built against an explicit
/// core::Clock (tests hand a VirtualClock so deadline expiry is driven by
/// the test, not the wall).
class Deadline {
 public:
  Deadline() = default;

  /// Expires `budget` from now on `clock` (null = the real steady clock).
  static Deadline after(std::chrono::nanoseconds budget,
                        const Clock* clock = nullptr);

  /// Expires at the absolute instant `at` on `clock`.
  static Deadline at(Clock::time_point at, const Clock* clock = nullptr);

  bool limited() const noexcept { return limited_; }
  bool expired() const noexcept;

  /// Time left before expiry; 0 when expired, nanoseconds::max() when
  /// unlimited.
  std::chrono::nanoseconds remaining() const noexcept;

  /// The cut-off instant (meaningful only when limited()).
  Clock::time_point when() const noexcept { return at_; }

 private:
  Clock::time_point now() const noexcept;

  Clock::time_point at_{};
  const Clock* clock_ = nullptr;  // null = steady
  bool limited_ = false;
};

/// Why a watchdog stopped a run (kNone = it did not).
enum class WatchdogTrip : unsigned char {
  kNone = 0,
  kStepBudget,  // the per-run step budget is spent
  kDeadline,    // the wall-clock deadline passed
  kCancelled,   // the cancel token was raised
};

const char* to_string(WatchdogTrip trip) noexcept;

/// Per-run progress meter. Steps are checked on every tick; the clock and
/// the cancel flag are polled only every kPollInterval steps so a tick in a
/// hot decode loop stays a couple of arithmetic ops.
class Watchdog {
 public:
  /// Unlimited: every tick returns kNone.
  Watchdog() = default;

  /// `max_steps` 0 means no step limit; `deadline` default means no time
  /// limit; `cancel` may be null. All three can combine.
  explicit Watchdog(std::size_t max_steps, Deadline deadline = {},
                    const CancelToken* cancel = nullptr)
      : max_steps_(max_steps), deadline_(deadline), cancel_(cancel) {}

  /// Charges `steps` units of work and reports whether the run must stop.
  /// Once tripped, every further tick keeps reporting the same trip.
  WatchdogTrip tick(std::size_t steps = 1) noexcept;

  /// Polls the deadline/cancel token without charging steps.
  WatchdogTrip check() noexcept;

  std::size_t steps() const noexcept { return steps_; }
  std::size_t max_steps() const noexcept { return max_steps_; }
  bool limited() const noexcept {
    return max_steps_ != 0 || deadline_.limited() || cancel_ != nullptr;
  }

 private:
  static constexpr std::size_t kPollInterval = 1024;

  std::size_t max_steps_ = 0;
  std::size_t steps_ = 0;
  std::size_t next_poll_ = kPollInterval;
  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  WatchdogTrip trip_ = WatchdogTrip::kNone;
};

}  // namespace nc::core
