#include "core/clock.h"

#include <thread>

namespace nc::core {

namespace {

class SteadyClock final : public Clock {
 public:
  time_point now() const override { return std::chrono::steady_clock::now(); }
  void sleep_for(std::chrono::nanoseconds d) override {
    if (d.count() > 0) std::this_thread::sleep_for(d);
  }
};

}  // namespace

Clock& Clock::steady() {
  static SteadyClock instance;
  return instance;
}

}  // namespace nc::core
