// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// The sharded artifact store splits large artifacts into k equal data
// strips and derives m parity strips so that ANY k of the k+m strips
// reconstruct the original bytes exactly. The coding matrix is the
// systematic [I; C] stack where C is a k-column Cauchy matrix: every k-row
// subset of a Cauchy-extended matrix is invertible, which is precisely the
// any-k-of-n guarantee. Field arithmetic is GF(2^8) with the conventional
// polynomial 0x11D (generator 2), via log/exp tables built at first use.
//
// Shape follows the NErasure::ICodec idiom -- encode(data) -> parity,
// decode(strips, erased) repairs in place -- but sized for this repo:
// strips are plain byte vectors and geometry is fixed per codec instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nc::core {

/// Reed-Solomon codec for a fixed (k data, m parity) geometry.
/// Valid geometries: 1 <= k, 0 <= m, k + m <= 255. All strips in one
/// encode/decode call must have identical length.
class ErasureCodec {
 public:
  ErasureCodec(unsigned data_strips, unsigned parity_strips);

  unsigned data_strips() const noexcept { return k_; }
  unsigned parity_strips() const noexcept { return m_; }
  unsigned total_strips() const noexcept { return k_ + m_; }

  /// Computes the m parity strips for k equal-length data strips.
  /// Throws std::invalid_argument on geometry or length mismatch.
  std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<std::vector<std::uint8_t>>& data) const;

  /// Repairs `strips` in place. `strips` holds all k+m strips in index
  /// order; entries listed in `erased` are reconstructed from the others
  /// (their prior contents are ignored -- they may be empty; they are
  /// resized to the strip length). At most m indices may be erased.
  /// Throws std::invalid_argument when more than m strips are erased, an
  /// index is out of range or duplicated, or lengths mismatch.
  void decode(std::vector<std::vector<std::uint8_t>>& strips,
              std::vector<unsigned> erased) const;

 private:
  unsigned k_;
  unsigned m_;
  // Row-major m x k Cauchy coding matrix: parity[j] = sum_i C[j][i]*data[i].
  std::vector<std::uint8_t> coding_;
};

}  // namespace nc::core
