// Injectable time source for everything that must be testable under time.
//
// The serve tier's robustness properties are *timing* properties: a request
// deadline expires, a slow client falls under its minimum progress rate, a
// retry backs off for 40 ms. Testing those against the real steady clock
// means every test either sleeps for real (slow) or races the scheduler
// (flaky). A Clock breaks the dependency:
//
//  * Clock::steady() is the real thing -- std::chrono::steady_clock plus a
//    genuine sleep -- and the default everywhere, so production code pays
//    one virtual call per time read and nothing else;
//  * VirtualClock is a manually-advanced counter that only moves when a
//    test says so; its sleep_for() advances virtual time *instantly*, so a
//    "2-second stall" costs microseconds of wall time and is exactly
//    reproducible.
//
// Both hand out std::chrono::steady_clock::time_point values, so deadline
// arithmetic downstream (core::Deadline, the serve scheduler, the retry
// client) is identical under either source. Time reads are thread-safe;
// VirtualClock::advance may race readers by design (a reader sees the time
// before or after the advance, both valid).
#pragma once

#include <atomic>
#include <chrono>

namespace nc::core {

class Clock {
 public:
  using time_point = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;

  virtual time_point now() const = 0;

  /// Blocks the caller for `d` of this clock's time. The steady clock
  /// really sleeps; a virtual clock advances itself and returns at once.
  virtual void sleep_for(std::chrono::nanoseconds d) = 0;

  /// The real steady clock; process-wide singleton, stateless.
  static Clock& steady();

  /// `clock` if non-null, else the steady singleton -- the idiom every
  /// config with an optional clock hook uses.
  static Clock& or_steady(Clock* clock) {
    return clock != nullptr ? *clock : steady();
  }
};

/// Manually-advanced clock for tests. Starts at the real steady now() so
/// time_points remain plausible; advances only via advance()/sleep_for().
class VirtualClock final : public Clock {
 public:
  VirtualClock() : epoch_(std::chrono::steady_clock::now()), offset_ns_(0) {}

  time_point now() const override {
    return epoch_ + std::chrono::nanoseconds(
                        offset_ns_.load(std::memory_order_acquire));
  }

  void sleep_for(std::chrono::nanoseconds d) override { advance(d); }

  /// Moves virtual time forward; never backward (negative is ignored).
  void advance(std::chrono::nanoseconds d) {
    if (d.count() > 0)
      offset_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

 private:
  const time_point epoch_;
  std::atomic<std::int64_t> offset_ns_;
};

}  // namespace nc::core
