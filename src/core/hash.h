// The one 128-bit content hash in the tree.
//
// The serve-layer artifact cache, the persistent store's content keys and
// the sharded store's rendezvous router all address bytes by the same
// digest: FNV-1a run twice over the input with two independent offset
// bases, giving a 128-bit address. It is not cryptographic, but it is
// collision-safe at fleet-cache scale, dependency-free, and cheap enough
// to run per request. It used to live as a private struct inside
// serve/cache.cpp; this header is the single shared definition, pinned by
// hash_test.cpp's fixed vectors so no caller can drift byte-wise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace nc::core {

/// A 128-bit digest. `lo` and `hi` are the two independent FNV-1a states;
/// both halves see every input byte.
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Hash128&) const = default;

  /// 32 lowercase hex chars, hi first -- matches CacheKey/store Key hex().
  std::string hex() const;
};

/// Streaming dual-offset FNV-1a. Feed bytes/integers in any chunking; the
/// digest depends only on the byte sequence. Default-constructed state is
/// the empty-input digest.
class Fnv128 {
 public:
  static constexpr std::uint64_t kPrime = 0x100000001B3ull;
  static constexpr std::uint64_t kOffsetLo = 0xCBF29CE484222325ull;
  // A second, independent offset basis turns one FNV-1a pass into a
  // 128-bit address.
  static constexpr std::uint64_t kOffsetHi = 0x6C62272E07BB0142ull;

  void update(std::uint8_t byte) noexcept {
    lo_ = (lo_ ^ byte) * kPrime;
    hi_ = (hi_ ^ byte) * kPrime;
  }

  /// Little-endian: feeds the 8 bytes of `v` least-significant first.
  void update_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) update(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void update_bytes(const std::uint8_t* data, std::size_t len) noexcept {
    for (std::size_t i = 0; i < len; ++i) update(data[i]);
  }

  Hash128 digest() const noexcept { return {lo_, hi_}; }

 private:
  std::uint64_t lo_ = kOffsetLo;
  std::uint64_t hi_ = kOffsetHi;
};

/// One-shot digest over raw bytes.
Hash128 fnv128(const std::uint8_t* data, std::size_t len) noexcept;

/// splitmix64 finalizer (with the golden-ratio increment): the one seed
/// mixer in the tree. Fleet derives per-(device, batch) channel seeds and
/// the tuner derives per-candidate RNG seeds through this, so nested
/// `mix64(a ^ mix64(b))` compositions never correlate adjacent streams.
/// Pinned by hash_test.cpp's golden vectors; changing it re-seeds every
/// deterministic replay in the repo, so don't.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace nc::core
