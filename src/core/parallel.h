// parallel_for / parallel_map over a ThreadPool.
//
// Both helpers are *order-preserving*: results are written into slots keyed
// by input index, and the caller's thread blocks until every task finished.
// The first task exception (by input order, not completion order) is
// rethrown at the join point, so failures are as deterministic as results.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "core/thread_pool.h"

namespace nc::core {

/// Runs fn(i) for every i in [begin, end) on the pool, one task per index
/// (our work items -- shards -- are coarse; chunking would only add knobs).
/// Blocks until all complete; rethrows the lowest-index exception.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Fn&& fn) {
  if (begin >= end) return;
  std::vector<std::future<void>> pending;
  pending.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i)
    pending.push_back(pool.submit([&fn, i] { fn(i); }));
  // Drain every future before rethrowing: tasks past a failed one may still
  // be running and must not outlive the caller's captures.
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Maps fn over [0, count), collecting results in index order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(count);
  parallel_for(pool, 0, count,
               [&results, &fn](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace nc::core
