#include "core/erasure.h"

#include <algorithm>
#include <stdexcept>

namespace nc::core {

namespace {

// GF(2^8) with the conventional reducing polynomial x^8+x^4+x^3+x^2+1
// (0x11D); 2 generates the multiplicative group, so exp/log tables over
// powers of 2 cover every nonzero element.
struct GfTables {
  std::uint8_t exp[512];  // doubled so mul can skip the mod-255 branch
  std::uint8_t log[256];

  GfTables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // log(0) is undefined; mul() guards the zero case
  }
};

const GfTables& gf() {
  static const GfTables tables;
  return tables;
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const GfTables& t = gf();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  if (a == 0) throw std::invalid_argument("erasure: inverse of 0");
  const GfTables& t = gf();
  return t.exp[255 - t.log[a]];
}

/// Accumulates dst ^= coef * src over a whole strip.
void axpy(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
          std::uint8_t coef) noexcept {
  if (coef == 0) return;
  if (coef == 1) {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const GfTables& t = gf();
  const unsigned lc = t.log[coef];
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t s = src[i];
    if (s) dst[i] ^= t.exp[lc + t.log[s]];
  }
}

/// Inverts a k x k matrix over GF(2^8) in place by Gauss-Jordan.
/// Throws if singular (cannot happen for Cauchy submatrices; kept as a
/// defensive check against caller bugs).
void gf_invert(std::vector<std::uint8_t>& a, unsigned k) {
  std::vector<std::uint8_t> inv(static_cast<std::size_t>(k) * k, 0);
  for (unsigned i = 0; i < k; ++i) inv[i * k + i] = 1;
  for (unsigned col = 0; col < k; ++col) {
    unsigned pivot = col;
    while (pivot < k && a[pivot * k + col] == 0) ++pivot;
    if (pivot == k) throw std::invalid_argument("erasure: singular matrix");
    if (pivot != col) {
      for (unsigned j = 0; j < k; ++j) {
        std::swap(a[pivot * k + j], a[col * k + j]);
        std::swap(inv[pivot * k + j], inv[col * k + j]);
      }
    }
    const std::uint8_t scale = gf_inv(a[col * k + col]);
    for (unsigned j = 0; j < k; ++j) {
      a[col * k + j] = gf_mul(a[col * k + j], scale);
      inv[col * k + j] = gf_mul(inv[col * k + j], scale);
    }
    for (unsigned row = 0; row < k; ++row) {
      if (row == col) continue;
      const std::uint8_t f = a[row * k + col];
      if (f == 0) continue;
      for (unsigned j = 0; j < k; ++j) {
        a[row * k + j] ^= gf_mul(f, a[col * k + j]);
        inv[row * k + j] ^= gf_mul(f, inv[col * k + j]);
      }
    }
  }
  a = std::move(inv);
}

std::size_t common_length(const std::vector<std::vector<std::uint8_t>>& strips,
                          const std::vector<bool>& present) {
  std::size_t len = 0;
  bool seen = false;
  for (std::size_t i = 0; i < strips.size(); ++i) {
    if (!present[i]) continue;
    if (!seen) {
      len = strips[i].size();
      seen = true;
    } else if (strips[i].size() != len) {
      throw std::invalid_argument("erasure: strip length mismatch");
    }
  }
  if (!seen) throw std::invalid_argument("erasure: no strips present");
  return len;
}

}  // namespace

ErasureCodec::ErasureCodec(unsigned data_strips, unsigned parity_strips)
    : k_(data_strips), m_(parity_strips) {
  if (k_ < 1 || k_ + m_ > 255)
    throw std::invalid_argument("erasure: geometry out of range");
  // Cauchy matrix C[j][i] = 1 / (x_j ^ y_i) with disjoint coordinate sets
  // x_j = 255 - j (parity rows) and y_i = i (data columns); disjointness
  // holds because k + m <= 255, and it is what makes every square
  // submatrix of [I; C] invertible.
  coding_.resize(static_cast<std::size_t>(m_) * k_);
  for (unsigned j = 0; j < m_; ++j)
    for (unsigned i = 0; i < k_; ++i)
      coding_[j * k_ + i] =
          gf_inv(static_cast<std::uint8_t>((255 - j) ^ i));
}

std::vector<std::vector<std::uint8_t>> ErasureCodec::encode(
    const std::vector<std::vector<std::uint8_t>>& data) const {
  if (data.size() != k_)
    throw std::invalid_argument("erasure: encode expects k data strips");
  const std::size_t len =
      common_length(data, std::vector<bool>(k_, true));
  std::vector<std::vector<std::uint8_t>> parity(
      m_, std::vector<std::uint8_t>(len, 0));
  for (unsigned j = 0; j < m_; ++j)
    for (unsigned i = 0; i < k_; ++i)
      axpy(parity[j].data(), data[i].data(), len, coding_[j * k_ + i]);
  return parity;
}

void ErasureCodec::decode(std::vector<std::vector<std::uint8_t>>& strips,
                          std::vector<unsigned> erased) const {
  const unsigned n = k_ + m_;
  if (strips.size() != n)
    throw std::invalid_argument("erasure: decode expects k+m strips");
  std::sort(erased.begin(), erased.end());
  if (std::adjacent_find(erased.begin(), erased.end()) != erased.end())
    throw std::invalid_argument("erasure: duplicate erased index");
  if (erased.size() > m_)
    throw std::invalid_argument("erasure: more erasures than parity");
  if (!erased.empty() && erased.back() >= n)
    throw std::invalid_argument("erasure: erased index out of range");
  if (erased.empty()) return;

  std::vector<bool> present(n, true);
  for (const unsigned e : erased) present[e] = false;
  const std::size_t len = common_length(strips, present);

  // Pick the first k surviving strips as the reconstruction basis. Each
  // survivor is a known linear combination of the k data strips: row i of
  // the identity for a data strip i, coding row j for parity strip k+j.
  std::vector<unsigned> basis;
  for (unsigned i = 0; i < n && basis.size() < k_; ++i)
    if (present[i]) basis.push_back(i);

  std::vector<std::uint8_t> mat(static_cast<std::size_t>(k_) * k_, 0);
  for (unsigned r = 0; r < k_; ++r) {
    const unsigned s = basis[r];
    if (s < k_)
      mat[r * k_ + s] = 1;
    else
      for (unsigned i = 0; i < k_; ++i)
        mat[r * k_ + i] = coding_[(s - k_) * k_ + i];
  }
  gf_invert(mat, k_);  // mat now maps surviving strips -> data strips

  // Rebuild the erased data strips first (every output depends on them).
  std::vector<std::vector<std::uint8_t>> data(k_);
  for (unsigned i = 0; i < k_; ++i) {
    if (present[i]) {
      data[i] = strips[i];
      continue;
    }
    data[i].assign(len, 0);
    for (unsigned r = 0; r < k_; ++r)
      axpy(data[i].data(), strips[basis[r]].data(), len, mat[i * k_ + r]);
  }
  for (unsigned i = 0; i < k_; ++i)
    if (!present[i]) strips[i] = data[i];

  // Then re-derive any erased parity strips from the full data set.
  for (const unsigned e : erased) {
    if (e < k_) continue;
    const unsigned j = e - k_;
    strips[e].assign(len, 0);
    for (unsigned i = 0; i < k_; ++i)
      axpy(strips[e].data(), data[i].data(), len, coding_[j * k_ + i]);
  }
}

}  // namespace nc::core
