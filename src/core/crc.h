// The one CRC-32 implementation in the tree.
//
// Everything that guards bytes against corruption -- the sharded container's
// per-shard index, the service frame protocol, the fleet checkpoint journal,
// the artifact caches and the persistent store's segment/manifest records --
// computes the same checksum: CRC-32 (IEEE 802.3), reflected, polynomial
// 0xEDB88320, init/final xor 0xFFFFFFFF. It used to be copy-pasted as a
// bit-at-a-time table in three places; this header is the single shared
// definition, byte-compatible with all of them (pinned by crc_test.cpp's
// standard check vector) but implemented slice-by-8, which processes eight
// input bytes per iteration instead of one table lookup per byte.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nc::core {

/// One-shot CRC-32 over `len` raw bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept;

/// Streaming form: feed chunks through repeated calls, starting from
/// `crc32_init()` and finishing with `crc32_final()`. The one-shot form is
/// exactly crc32_final(crc32_update(crc32_init(), data, len)).
std::uint32_t crc32_init() noexcept;
std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t len) noexcept;
std::uint32_t crc32_final(std::uint32_t state) noexcept;

}  // namespace nc::core
