// Fixed-size thread pool with a shared task queue and future-based results.
//
// This is the execution substrate for every parallel path in the library
// (sharded encode/decode, the pipelined ATE session, the scaling bench).
// Design constraints, in order:
//  * determinism of *results* -- the pool only runs tasks; callers assemble
//    outputs by task index, never by completion order;
//  * no external dependencies -- std::thread + mutex + condition_variable;
//  * exception safety -- a task that throws stores the exception in its
//    future, so parallel_for/parallel_map can rethrow at the join point.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace nc::core {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 is clamped to 1. The pool is fixed-size for
  /// its whole lifetime.
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn` and returns the future of its result. Safe to call from
  /// any thread, including from inside a running task (tasks must not
  /// *block* on futures of tasks queued behind them, though -- that can
  /// deadlock a fully busy pool; parallel_for waits only from outside).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    // packaged_task is move-only; the queue holds copyable std::function, so
    // the task travels behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// max(1, std::thread::hardware_concurrency()) -- the default worker count
  /// everywhere a caller says "jobs=0 / auto".
  static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace nc::core
