#include "report/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace nc::report {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(std::size_t v) { return add(std::to_string(v)); }

Table& Table::add_signed(long long v) { return add(std::to_string(v)); }

Table& Table::add(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return add(os.str());
}

Table& Table::separator() {
  separators_.push_back(rows_.size());
  return *this;
}

void Table::print(std::ostream& out) const { out << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    if (r.size() > widths.size()) widths.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());
  }
  std::size_t total = widths.empty() ? 0 : 2 * widths.size();
  for (auto w : widths) total += w;

  std::ostringstream os;
  const std::string rule(std::max(total, title_.size()), '-');
  os << title_ << '\n' << rule << '\n';
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
    os << '\n';
  };
  if (!header_.empty()) {
    emit_row(header_);
    os << rule << '\n';
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) !=
        separators_.end())
      os << rule << '\n';
    emit_row(rows_[i]);
  }
  os << rule << '\n';
  return os.str();
}

}  // namespace nc::report
