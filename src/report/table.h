// Fixed-width text table printer used by the bench binaries to emit
// paper-style tables (Table II ... Table VIII).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nc::report {

/// Column-aligned table with a title row and a header row. Cells are
/// preformatted strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);

  /// Starts a new row; subsequent `add*` calls append cells to it.
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& add(std::size_t v);
  Table& add_signed(long long v);
  /// Fixed-point with `digits` decimals (paper tables use 1-2).
  Table& add(double v, int digits = 2);

  /// Appends a rule line followed by a row (used for the "Avg" row).
  Table& separator();

  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

}  // namespace nc::report
