// Minimal JSON value builder + writer for machine-readable bench and
// metrics output.
//
// The bench binaries print paper-style text tables (table.h) for humans;
// the perf trajectory needs the same numbers machine-readable, so every
// scaling/throughput bench also drops a BENCH_<name>.json next to its
// table, and the serve layer's Stats reply is a Json dump. The type is a
// deliberately small subset of JSON:
//  * objects preserve insertion order (stable diffs across runs);
//  * numbers are int64 / uint64 / double; non-finite doubles emit null
//    (JSON has no NaN/Inf);
//  * no parsing -- this library only ever produces JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nc::report {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(long v) : kind_(Kind::kInt), int_(v) {}
  Json(long long v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned v) : kind_(Kind::kUint), uint_(v) {}
  Json(unsigned long v) : kind_(Kind::kUint), uint_(v) {}
  Json(unsigned long long v) : kind_(Kind::kUint), uint_(v) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}

  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Object access: inserts a null member on first use (a null or default-
  /// constructed Json silently becomes an object, so j["a"]["b"] = 1 works).
  Json& operator[](const std::string& key);

  /// Array append; a null Json silently becomes an array.
  Json& push_back(Json v);

  std::size_t size() const noexcept;

  /// Serialization. `indent` 0 writes compact one-line JSON; > 0 pretty-
  /// prints with that many spaces per level.
  void write(std::ostream& out, int indent = 2) const;
  std::string dump(int indent = 2) const;

 private:
  enum class Kind : unsigned char {
    kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject,
  };
  explicit Json(Kind kind) : kind_(kind) {}

  void write_impl(std::ostream& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Writes `json` (pretty-printed, trailing newline) to `path`; throws
/// std::runtime_error on I/O failure. The bench binaries use this for their
/// BENCH_<name>.json outputs.
void write_json_file(const std::string& path, const Json& json);

}  // namespace nc::report
