#include "report/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nc::report {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out << buf;
  // "%g" of a whole number prints no decimal point; keep the value a JSON
  // number either way (it already is), nothing to fix up.
}

void newline_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject)
    throw std::logic_error("Json::operator[] on a non-object value");
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, Json());
  return object_.back().second;
}

Json& Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray)
    throw std::logic_error("Json::push_back on a non-array value");
  array_.push_back(std::move(v));
  return array_.back();
}

std::size_t Json::size() const noexcept {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    default: return 0;
  }
}

void Json::write(std::ostream& out, int indent) const {
  write_impl(out, indent, 0);
}

void Json::write_impl(std::ostream& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out << "null"; break;
    case Kind::kBool: out << (bool_ ? "true" : "false"); break;
    case Kind::kInt: out << int_; break;
    case Kind::kUint: out << uint_; break;
    case Kind::kDouble: write_double(out, double_); break;
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out << ',';
        newline_indent(out, indent, depth + 1);
        array_[i].write_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out << ',';
        newline_indent(out, indent, depth + 1);
        write_escaped(out, object_[i].first);
        out << (indent > 0 ? ": " : ":");
        object_[i].second.write_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out << '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream out;
  write(out, indent);
  return out.str();
}

void write_json_file(const std::string& path, const Json& json) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  json.write(out, 2);
  out << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace nc::report
