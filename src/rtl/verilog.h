// Synthesizable Verilog emitter for the 9C on-chip decompressor.
//
// Produces the Fig. 1 decoder -- codeword-recognition FSM, log2(K/2)
// counter, K/2-bit shifter and output MUX -- as a single-clock RTL module
// with an `ate_tick` clock-enable marking the cycles on which a serial ATE
// bit is valid (the standard synchronous realization of the paper's
// dual-clock scheme: f_scan = p * f_ate means one ate_tick every p SoC
// cycles). Works for ANY 9C codeword table, so the frequency-directed
// variant of Table VII emits just as well.
//
// Interface of the generated module:
//   input  clk, rst            SoC clock / synchronous reset
//   input  ate_tick            high when data_in carries a fresh ATE bit
//   input  dec_en              start/continue decompression
//   input  data_in             serial data from the tester
//   output ack                 pulses when a block finishes
//   output scan_en             enables the scan chain shift
//   output d_out               decompressed serial scan data
#pragma once

#include <cstddef>
#include <string>

#include "codec/codeword_table.h"

namespace nc::rtl {

struct VerilogOptions {
  std::string module_name = "ninec_decoder";
  /// Emit `// synthesis`-friendly comments describing each state.
  bool comments = true;
};

/// Emits the decoder for block size `k` (even, >= 4 so the counter has at
/// least one bit) and the given codeword table. Throws std::invalid_argument
/// on a bad K.
std::string generate_decoder_verilog(const codec::CodewordTable& table,
                                     std::size_t k,
                                     const VerilogOptions& options = {});

/// Emits a self-checking testbench skeleton that instantiates the decoder
/// and plays a compressed stream into it (stream literal supplied by the
/// caller as a Verilog vector initializer).
std::string generate_decoder_testbench(const codec::CodewordTable& table,
                                       std::size_t k,
                                       const std::string& module_name);

/// Emits the Fig. 3 multiple-scan wrapper: instantiates the decoder, feeds
/// its serial output into a `chains`-bit staging shifter, and pulses `load`
/// every `chains` decoded bits so the slice parallel-loads into the scan
/// chains. `decoder_module` must match a previously emitted decoder.
std::string generate_multiscan_verilog(std::size_t chains,
                                       const std::string& decoder_module,
                                       const std::string& module_name =
                                           "ninec_multiscan");

/// Structural sanity check used by tests and by the emitter itself:
/// balanced module/endmodule, case/endcase, begin/end tokens.
bool verilog_tokens_balanced(const std::string& source);

}  // namespace nc::rtl
