// Fitness of one genome on one workload: real encoder, real TAT model,
// real synthesized decoder cost.
//
// Nothing in here estimates. The candidate is run end-to-end through the
// production NineCoded path (bitplane through the CodecImpl selector) for
// its compression ratio, through decomp's cycle accounting for TAT, and its
// decoder controller is synthesized gate-by-gate with synth::code_synth
// (trie FSM + Quine-McCluskey) for the hardware price. The three axes
// combine under a weight vector into one scalar score; an invalid genome
// (Kraft violation, oversized FSM) scores -infinity and is counted, not
// repaired -- the optimizer's selection pressure does the repairing.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "bits/test_set.h"
#include "tune/genome.h"

namespace nc::tune {

/// The scalarization. Score = cr * CR% + tat * TAT% - gates * FSM gate
/// equivalents. CR and TAT are percentages (bigger is better); gates is an
/// absolute count (smaller is better), so its weight is a price per gate in
/// "CR points".
struct TuneWeights {
  double cr = 1.0;
  double tat = 0.25;
  double gates = 0.05;
  /// ATE:SoC clock ratio for the TAT model (paper Table V uses 8).
  unsigned p = 8;

  bool operator==(const TuneWeights&) const = default;
};

struct FitnessReport {
  bool valid = false;
  double cr_percent = 0.0;
  double tat_percent = 0.0;
  std::size_t fsm_gates = 0;       // synthesized controller, gate equivalents
  std::size_t datapath_gates = 0;  // + counter/shifter estimate (reported)
  std::size_t encoded_bits = 0;
  double score = -std::numeric_limits<double>::infinity();
};

/// Evaluates genomes against one TestSet. Thread-safe: the optimizer calls
/// evaluate() from every pool worker. FSM synthesis (the expensive part,
/// and a pure function of the length assignment) and filled TD streams
/// (pure functions of the fill policy + seed) are memoized under a mutex.
class FitnessEvaluator {
 public:
  FitnessEvaluator(const bits::TestSet& td, TuneWeights weights,
                   codec::CodecImpl impl = codec::CodecImpl::kAuto);

  /// Never throws for an invalid genome: returns report.valid = false with
  /// score -infinity.
  FitnessReport evaluate(const TuneGenome& genome) const;

  const TuneWeights& weights() const noexcept { return weights_; }

 private:
  const bits::TritVector& filled_stream(const TuneGenome& genome) const;
  std::size_t fsm_cost(const std::array<unsigned, codec::kNumClasses>& lengths,
                       const codec::CodewordTable& table) const;

  bits::TestSet td_;
  TuneWeights weights_;
  codec::CodecImpl impl_;

  mutable std::mutex mutex_;
  mutable std::map<std::pair<unsigned, std::uint64_t>, bits::TritVector>
      fill_memo_;
  mutable std::map<std::string, std::size_t> fsm_memo_;
};

/// The full decoder estimate for reporting: the synthesized FSM plus the
/// same counter/shifter/mux pricing decoder_gate_estimate uses, sized for
/// the genome's larger half.
std::size_t datapath_gate_estimate(std::size_t k, std::size_t split,
                                   std::size_t fsm_gates) noexcept;

}  // namespace nc::tune
