// The seeded evolutionary loop over TuneGenomes.
//
// Classic (mu + lambda) elitism a la Polian et al.: the population is
// ranked by scalar fitness, the top slice survives unchanged, and the rest
// is rebuilt by crossover + mutation of elite parents. Three properties are
// contractual (DESIGN.md section 16):
//  * Seeded determinism -- every random draw comes from a per-candidate
//    std::mt19937_64 seeded mix64(seed ^ mix64(generation << 32 | slot)),
//    so two runs with the same (TestSet, config) are bit-identical.
//  * Jobs-invariance -- fitness evaluation fans out on a ThreadPool via
//    core::parallel_map (order-preserving) and ranking ties break on the
//    lower population index, so --jobs changes wall time, never the result.
//  * Baseline dominance -- slot 0 of generation 0 is the paper's standard
//    genome and slot 1 the frequency-directed reassignment for this TD;
//    elitism guarantees the winner scores at least as well as both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tune/fitness.h"
#include "tune/genome.h"

namespace nc::tune {

struct TuneConfig {
  std::uint64_t seed = 1;
  std::size_t generations = 10;
  std::size_t population = 24;
  /// Worker threads for fitness evaluation (result-invariant).
  std::size_t jobs = 1;
  TuneWeights weights;
  codec::CodecImpl impl = codec::CodecImpl::kAuto;

  /// Mutation bounds. K stays in [k_min, k_max]; codeword lengths in
  /// [1, max_len] (the decoder FSM grows with the trie, so cap it);
  /// baseline_k seeds the standard/frequency-directed genomes.
  std::size_t k_min = 4;
  std::size_t k_max = 32;
  std::size_t baseline_k = 8;
  unsigned max_len = 8;
  /// Search asymmetric half splits (off = always K/2).
  bool tune_split = true;
  /// Search X-fill policies (off = keep X alive, the paper's default).
  bool tune_fill = true;
};

/// One generation's summary, in order; the score trace of the run.
struct GenerationTrace {
  std::size_t generation = 0;
  double best_score = 0.0;
  double mean_valid_score = 0.0;
  std::size_t invalid = 0;  // candidates rejected this generation
};

struct TuneResult {
  TuneGenome best;
  FitnessReport best_report;
  /// The two seeded baselines, scored with the same evaluator.
  FitnessReport standard_report;
  FitnessReport frequency_directed_report;
  TuneGenome frequency_directed;
  std::vector<GenerationTrace> trace;
  std::size_t evaluations = 0;
  std::size_t invalid_genomes = 0;
};

/// Runs the loop. Throws std::invalid_argument on a degenerate config
/// (population < 2, generations == 0, jobs == 0, empty TD).
TuneResult run_tune(const bits::TestSet& td, const TuneConfig& config);

}  // namespace nc::tune
