#include "tune/fitness.h"

#include <algorithm>

#include "decomp/timing.h"
#include "synth/code_synth.h"

namespace nc::tune {

FitnessEvaluator::FitnessEvaluator(const bits::TestSet& td,
                                   TuneWeights weights, codec::CodecImpl impl)
    : td_(td), weights_(weights), impl_(impl) {}

const bits::TritVector& FitnessEvaluator::filled_stream(
    const TuneGenome& genome) const {
  const auto key = std::make_pair(static_cast<unsigned>(genome.fill),
                                  genome.fill == FillPolicy::kRandom
                                      ? genome.fill_seed
                                      : std::uint64_t{0});
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fill_memo_.find(key);
  if (it == fill_memo_.end())
    it = fill_memo_.emplace(key, genome.apply_fill(td_).flatten()).first;
  return it->second;
}

std::size_t FitnessEvaluator::fsm_cost(
    const std::array<unsigned, codec::kNumClasses>& lengths,
    const codec::CodewordTable& table) const {
  std::string key(lengths.begin(), lengths.end());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fsm_memo_.find(key);
    if (it != fsm_memo_.end()) return it->second;
  }
  // Synthesize outside the lock: QM minimization is the slow part and two
  // workers racing on the same key just do the same pure work twice.
  const synth::CodeSynthResult fsm =
      synth::synthesize_code_fsm(synth::leaves_for_table(table), 3);
  const std::size_t gates = fsm.total_gate_equivalents();
  std::lock_guard<std::mutex> lock(mutex_);
  fsm_memo_.emplace(std::move(key), gates);
  return gates;
}

std::size_t datapath_gate_estimate(std::size_t k, std::size_t split,
                                   std::size_t fsm_gates) noexcept {
  // Same pricing as synth::decoder_gate_estimate, with the counter and
  // shifter sized for the genome's larger half instead of K/2.
  const std::size_t resolved = split == 0 ? k / 2 : split;
  const std::size_t widest = std::max(resolved, k - resolved);
  std::size_t counter_bits = 0;
  while ((std::size_t{1} << counter_bits) < widest) ++counter_bits;
  if (counter_bits == 0) counter_bits = 1;
  return fsm_gates + counter_bits * 8 + counter_bits + widest * 6 + 3;
}

FitnessReport FitnessEvaluator::evaluate(const TuneGenome& genome) const {
  FitnessReport report;
  try {
    const codec::NineCoded coder = genome.make_coder(impl_);
    const bits::TritVector& stream = filled_stream(genome);
    const codec::NineCodedStats stats = coder.analyze(stream);
    report.cr_percent = stats.compression_ratio();
    report.tat_percent =
        decomp::tat_percent(stats, coder.table(), weights_.p);
    report.fsm_gates = fsm_cost(genome.lengths, coder.table());
    report.datapath_gates =
        datapath_gate_estimate(genome.k, genome.split, report.fsm_gates);
    report.encoded_bits = stats.encoded_bits;
    report.score = weights_.cr * report.cr_percent +
                   weights_.tat * report.tat_percent -
                   weights_.gates * static_cast<double>(report.fsm_gates);
    report.valid = true;
  } catch (const std::invalid_argument&) {
    // CodeSpecError (bad lengths), bad K/split, or an FSM past the
    // synthesizer's state cap: the genome is simply unfit.
    report = FitnessReport{};
  }
  return report;
}

}  // namespace nc::tune
