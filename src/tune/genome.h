// The search space of the code tuner: one genome = one complete coding
// configuration.
//
// The paper fixes the codeword lengths (Table I), the block size K, the
// symmetric K/2 split and leaves leftover X alive; Table VII only permutes
// lengths by frequency. Polian et al. (PAPERS.md) showed the whole
// parameter set is searchable. A TuneGenome bundles every knob the encoder,
// decoder and synthesized hardware agree on:
//  * `lengths`  -- codeword length per class C1..C9 (canonical patterns
//                  follow from CodewordTable::from_lengths);
//  * `k`        -- block size;
//  * `split`    -- left-half length (0 = the paper's K/2);
//  * `fill`     -- X-fill policy applied to TD before encoding.
// A genome round-trips through JSON (`ninec tune --out` / `ninec compress
// --table`) and through a fixed-width byte form (serve Tune payloads and
// artifact values), both bit-exact.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bits/test_set.h"
#include "codec/nine_coded.h"

namespace nc::tune {

/// X-fill applied to TD before encoding. kNone keeps X alive so the code
/// itself absorbs them (the paper's default); the others delegate to
/// power::fill, trading leftover-X flexibility for better compression of
/// now-uniform halves.
enum class FillPolicy : unsigned char {
  kNone = 0,
  kZero,
  kOne,
  kRandom,
  kMinTransition,
};

inline constexpr unsigned kNumFillPolicies = 5;

const char* fill_policy_name(FillPolicy p) noexcept;

/// Inverse of fill_policy_name; throws std::invalid_argument on an unknown
/// name.
FillPolicy fill_policy_from_name(const std::string& name);

/// A malformed genome JSON document (bad syntax, missing or out-of-range
/// field, wrong format tag).
class GenomeParseError : public std::runtime_error {
 public:
  explicit GenomeParseError(const std::string& what)
      : std::runtime_error("tune genome: " + what) {}
};

struct TuneGenome {
  std::size_t k = 8;
  /// Left-half length in trits; 0 means the symmetric K/2 (requires even K).
  std::size_t split = 0;
  std::array<unsigned, codec::kNumClasses> lengths{1, 2, 5, 5, 5, 5, 5, 5, 4};
  FillPolicy fill = FillPolicy::kNone;
  /// Seed for FillPolicy::kRandom; part of the genome so a tuned result is
  /// reproducible bit-for-bit.
  std::uint64_t fill_seed = 1;

  bool operator==(const TuneGenome&) const = default;

  /// The paper's Table I configuration at block size `k`.
  static TuneGenome standard(std::size_t k = 8);

  std::size_t resolved_split() const noexcept {
    return split == 0 ? k / 2 : split;
  }

  /// True when this genome is exactly the paper's default shape at its K
  /// (symmetric split, no fill) -- such tables can ride the legacy .9c
  /// container unchanged.
  bool is_standard_shape() const noexcept;

  /// Builds the coder; throws codec::CodeSpecError / std::invalid_argument
  /// if the genome is invalid (bad lengths, bad K/split combination).
  codec::NineCoded make_coder(
      codec::CodecImpl impl = codec::CodecImpl::kAuto) const;

  /// Applies the fill policy (identity copy for kNone).
  bits::TestSet apply_fill(const bits::TestSet& td) const;

  /// JSON document (pretty-printed, with a "format" tag) -- the `--table`
  /// file format.
  std::string to_json() const;

  /// Parses to_json output (and hand-written equivalents). Throws
  /// GenomeParseError; accepts unknown keys silently so the format can grow.
  static TuneGenome from_json(const std::string& text);

  /// Fixed-width little-endian byte form used in serve payloads and
  /// artifacts: u64 k | u64 split | 9 x u8 lengths | u8 fill | u64 seed.
  void append_bytes(std::vector<std::uint8_t>& out) const;

  /// Reads the byte form at `off`, advancing it. Throws GenomeParseError on
  /// truncation or an out-of-range fill policy.
  static TuneGenome from_bytes(const std::vector<std::uint8_t>& bytes,
                               std::size_t& off);
};

}  // namespace nc::tune
