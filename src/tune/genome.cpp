#include "tune/genome.h"

#include <cctype>
#include <limits>

#include "power/fill.h"
#include "report/json.h"

namespace nc::tune {

namespace {

constexpr const char* kFormatTag = "nc9-tune-genome";

}  // namespace

const char* fill_policy_name(FillPolicy p) noexcept {
  switch (p) {
    case FillPolicy::kNone: return "none";
    case FillPolicy::kZero: return "zero";
    case FillPolicy::kOne: return "one";
    case FillPolicy::kRandom: return "random";
    case FillPolicy::kMinTransition: return "min-transition";
  }
  return "?";
}

FillPolicy fill_policy_from_name(const std::string& name) {
  for (unsigned i = 0; i < kNumFillPolicies; ++i) {
    const auto p = static_cast<FillPolicy>(i);
    if (name == fill_policy_name(p)) return p;
  }
  throw std::invalid_argument("unknown fill policy: " + name);
}

TuneGenome TuneGenome::standard(std::size_t k) {
  TuneGenome g;
  g.k = k;
  return g;
}

bool TuneGenome::is_standard_shape() const noexcept {
  return split == 0 && fill == FillPolicy::kNone;
}

codec::NineCoded TuneGenome::make_coder(codec::CodecImpl impl) const {
  return codec::NineCoded(k, codec::CodewordTable::from_lengths(lengths), impl,
                          split);
}

bits::TestSet TuneGenome::apply_fill(const bits::TestSet& td) const {
  switch (fill) {
    case FillPolicy::kNone:
      return td;
    case FillPolicy::kZero:
      return power::fill(td, power::FillStrategy::kZero, fill_seed);
    case FillPolicy::kOne:
      return power::fill(td, power::FillStrategy::kOne, fill_seed);
    case FillPolicy::kRandom:
      return power::fill(td, power::FillStrategy::kRandom, fill_seed);
    case FillPolicy::kMinTransition:
      return power::fill(td, power::FillStrategy::kMinTransition, fill_seed);
  }
  return td;
}

std::string TuneGenome::to_json() const {
  report::Json j = report::Json::object();
  j["format"] = kFormatTag;
  j["k"] = static_cast<std::uint64_t>(k);
  j["split"] = static_cast<std::uint64_t>(split);
  report::Json lens = report::Json::array();
  for (unsigned len : lengths) lens.push_back(len);
  j["lengths"] = std::move(lens);
  j["fill"] = fill_policy_name(fill);
  j["fill_seed"] = fill_seed;
  return j.dump() + "\n";
}

// ----------------------------------------------------------- JSON parsing
// report::Json is write-only by design, so the genome file gets its own
// minimal recursive-descent reader: objects, arrays, strings and unsigned
// integers -- exactly the subset to_json emits. Unknown keys are skipped
// (their values parsed and discarded) so the format can gain fields without
// breaking old readers.

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  TuneGenome parse() {
    TuneGenome g;
    bool saw_format = false, saw_k = false, saw_lengths = false;
    skip_ws();
    expect('{');
    skip_ws();
    if (!eat('}')) {
      do {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "format") {
          if (parse_string() != kFormatTag)
            throw GenomeParseError("unrecognized format tag");
          saw_format = true;
        } else if (key == "k") {
          g.k = parse_uint();
          saw_k = true;
        } else if (key == "split") {
          g.split = parse_uint();
        } else if (key == "lengths") {
          parse_lengths(g.lengths);
          saw_lengths = true;
        } else if (key == "fill") {
          try {
            g.fill = fill_policy_from_name(parse_string());
          } catch (const std::invalid_argument& e) {
            throw GenomeParseError(e.what());
          }
        } else if (key == "fill_seed") {
          g.fill_seed = parse_uint();
        } else {
          skip_value();
        }
        skip_ws();
      } while (eat(','));
      expect('}');
    }
    skip_ws();
    if (at_ < s_.size()) throw GenomeParseError("trailing characters");
    if (!saw_format) throw GenomeParseError("missing \"format\" tag");
    if (!saw_k) throw GenomeParseError("missing \"k\"");
    if (!saw_lengths) throw GenomeParseError("missing \"lengths\"");
    return g;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw GenomeParseError(what + " at offset " + std::to_string(at_));
  }

  void skip_ws() {
    while (at_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[at_])))
      ++at_;
  }

  bool eat(char c) {
    if (at_ < s_.size() && s_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (at_ < s_.size() && s_[at_] != '"') {
      if (s_[at_] == '\\') fail("escape sequences unsupported");
      out += s_[at_++];
    }
    expect('"');
    return out;
  }

  std::uint64_t parse_uint() {
    if (at_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[at_])))
      fail("expected unsigned integer");
    std::uint64_t v = 0;
    while (at_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[at_]))) {
      const std::uint64_t digit = static_cast<std::uint64_t>(s_[at_] - '0');
      if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
        fail("integer overflow");
      v = v * 10 + digit;
      ++at_;
    }
    return v;
  }

  void parse_lengths(std::array<unsigned, codec::kNumClasses>& out) {
    expect('[');
    for (std::size_t i = 0; i < codec::kNumClasses; ++i) {
      skip_ws();
      const std::uint64_t v = parse_uint();
      if (v == 0 || v > 31) fail("codeword length out of range [1, 31]");
      out[i] = static_cast<unsigned>(v);
      skip_ws();
      if (i + 1 < codec::kNumClasses) expect(',');
    }
    expect(']');
  }

  /// Parses and discards any value (for unknown keys).
  void skip_value() {
    skip_ws();
    if (at_ >= s_.size()) fail("unexpected end of input");
    const char c = s_[at_];
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      ++at_;
      skip_ws();
      if (eat('}')) return;
      do {
        skip_ws();
        parse_string();
        skip_ws();
        expect(':');
        skip_value();
        skip_ws();
      } while (eat(','));
      expect('}');
    } else if (c == '[') {
      ++at_;
      skip_ws();
      if (eat(']')) return;
      do {
        skip_value();
        skip_ws();
      } while (eat(','));
      expect(']');
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      if (c == '-') ++at_;
      parse_uint();
      // Fractions/exponents never appear in genome files; reject them
      // rather than mis-read them.
      if (at_ < s_.size() && (s_[at_] == '.' || s_[at_] == 'e' || s_[at_] == 'E'))
        fail("non-integer numbers unsupported");
    } else if (s_.compare(at_, 4, "true") == 0) {
      at_ += 4;
    } else if (s_.compare(at_, 5, "false") == 0) {
      at_ += 5;
    } else if (s_.compare(at_, 4, "null") == 0) {
      at_ += 4;
    } else {
      fail("unexpected character");
    }
  }

  const std::string& s_;
  std::size_t at_ = 0;
};

}  // namespace

TuneGenome TuneGenome::from_json(const std::string& text) {
  TuneGenome g = Parser(text).parse();
  // Structural sanity here; full coding validity (Kraft etc.) surfaces from
  // make_coder so the caller sees one error path for "bad genome".
  if (g.k < 2) throw GenomeParseError("k must be >= 2");
  if (g.split >= g.k) throw GenomeParseError("split must be in [0, k-1]");
  if (g.split == 0 && g.k % 2 != 0)
    throw GenomeParseError("split 0 (symmetric) requires even k");
  return g;
}

// ------------------------------------------------------------- byte form

namespace {

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_le64(const std::vector<std::uint8_t>& bytes,
                       std::size_t& off) {
  if (bytes.size() - off < 8) throw GenomeParseError("byte form truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes[off++]) << (8 * i);
  return v;
}

}  // namespace

void TuneGenome::append_bytes(std::vector<std::uint8_t>& out) const {
  put_le64(out, k);
  put_le64(out, split);
  for (unsigned len : lengths) out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(fill));
  put_le64(out, fill_seed);
}

TuneGenome TuneGenome::from_bytes(const std::vector<std::uint8_t>& bytes,
                                  std::size_t& off) {
  TuneGenome g;
  g.k = get_le64(bytes, off);
  g.split = get_le64(bytes, off);
  if (bytes.size() - off < codec::kNumClasses + 1 + 8)
    throw GenomeParseError("byte form truncated");
  for (auto& len : g.lengths) len = bytes[off++];
  const std::uint8_t fill = bytes[off++];
  if (fill >= kNumFillPolicies)
    throw GenomeParseError("fill policy out of range");
  g.fill = static_cast<FillPolicy>(fill);
  g.fill_seed = get_le64(bytes, off);
  return g;
}

}  // namespace nc::tune
