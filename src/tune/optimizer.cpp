#include "tune/optimizer.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>
#include <utility>

#include "core/hash.h"
#include "core/parallel.h"
#include "core/thread_pool.h"

namespace nc::tune {

namespace {

using core::mix64;

/// Bounded draw from the (fully specified) mt19937_64 word stream. Plain
/// modulo, not std::uniform_int_distribution: the distribution's mapping is
/// implementation-defined and would make "same seed, same result" hold only
/// per standard library. Modulo bias is irrelevant for a mutation picker.
std::uint64_t draw(std::mt19937_64& rng, std::uint64_t n) {
  return rng() % n;
}

/// Re-scores this TD with the paper's two-pass frequency-directed
/// reassignment (Table VII) at the baseline K; seeded into the population
/// so the winner provably dominates it.
TuneGenome frequency_directed_genome(const bits::TestSet& td,
                                     const TuneConfig& cfg) {
  const codec::NineCoded probe(cfg.baseline_k, codec::CodewordTable::standard(),
                               cfg.impl);
  const codec::NineCodedStats stats = probe.analyze(td.flatten());
  const codec::CodewordTable table =
      codec::CodewordTable::frequency_directed(stats.counts);
  TuneGenome g = TuneGenome::standard(cfg.baseline_k);
  for (std::size_t c = 0; c < codec::kNumClasses; ++c)
    g.lengths[c] = table.length(static_cast<codec::BlockClass>(c));
  return g;
}

/// Keeps K inside [k_min, k_max] and, for symmetric genomes, even; keeps
/// split inside [1, K-1].
void clamp_shape(TuneGenome& g, const TuneConfig& cfg) {
  g.k = std::clamp(g.k, cfg.k_min, cfg.k_max);
  if (g.split == 0 && g.k % 2 != 0) {
    // Symmetric split needs even K; k_min/k_max are validated even, so one
    // step in range always exists.
    g.k = g.k + 1 <= cfg.k_max ? g.k + 1 : g.k - 1;
  }
  if (g.split >= g.k) g.split = g.k - 1;
}

void mutate(TuneGenome& g, std::mt19937_64& rng, const TuneConfig& cfg) {
  // Ops 0..3 are always on; split/fill ops join the menu when enabled.
  std::uint64_t ops = 4;
  if (cfg.tune_split) ++ops;
  if (cfg.tune_fill) ops += 2;
  std::uint64_t op = draw(rng, ops);
  if (op >= 4 && !cfg.tune_split) ++op;  // skip the split op's slot
  switch (op) {
    case 0: {  // swap the lengths of two classes
      const std::size_t a = draw(rng, codec::kNumClasses);
      const std::size_t b = draw(rng, codec::kNumClasses);
      std::swap(g.lengths[a], g.lengths[b]);
      break;
    }
    case 1: {  // nudge one length (may violate Kraft: scored, not repaired)
      const std::size_t a = draw(rng, codec::kNumClasses);
      if (draw(rng, 2) == 0 && g.lengths[a] < cfg.max_len)
        ++g.lengths[a];
      else if (g.lengths[a] > 1)
        --g.lengths[a];
      break;
    }
    case 2: {  // block size +- 2 (parity-preserving)
      if (draw(rng, 2) == 0)
        g.k += 2;
      else if (g.k >= cfg.k_min + 2)
        g.k -= 2;
      break;
    }
    case 3: {  // randomize the fill seed (matters only for kRandom)
      g.fill_seed = rng();
      break;
    }
    case 4: {  // nudge the split point
      std::size_t s = g.resolved_split();
      if (draw(rng, 2) == 0)
        ++s;
      else if (s > 1)
        --s;
      g.split = std::min(s, g.k - 1);
      break;
    }
    case 5: {  // jump to a random fill policy
      g.fill = static_cast<FillPolicy>(draw(rng, kNumFillPolicies));
      break;
    }
    default: {  // 6: back to the paper's keep-X default
      g.fill = FillPolicy::kNone;
      break;
    }
  }
  clamp_shape(g, cfg);
}

TuneGenome crossover(const TuneGenome& a, const TuneGenome& b,
                     std::mt19937_64& rng) {
  TuneGenome child = a;
  // (k, split) travel as a unit -- they constrain each other.
  if (draw(rng, 2) == 0) {
    child.k = b.k;
    child.split = b.split;
  }
  if (draw(rng, 2) == 0) child.lengths = b.lengths;
  if (draw(rng, 2) == 0) {
    child.fill = b.fill;
    child.fill_seed = b.fill_seed;
  }
  return child;
}

void validate(const bits::TestSet& td, const TuneConfig& cfg) {
  if (td.flatten().size() == 0)
    throw std::invalid_argument("tune: empty test set");
  if (cfg.population < 2)
    throw std::invalid_argument("tune: population must be >= 2");
  if (cfg.generations == 0)
    throw std::invalid_argument("tune: generations must be >= 1");
  if (cfg.jobs == 0) throw std::invalid_argument("tune: jobs must be >= 1");
  if (cfg.k_min < 2 || cfg.k_min % 2 != 0 || cfg.k_max % 2 != 0 ||
      cfg.k_min > cfg.k_max)
    throw std::invalid_argument("tune: need even 2 <= k_min <= k_max");
  if (cfg.baseline_k < cfg.k_min || cfg.baseline_k > cfg.k_max ||
      cfg.baseline_k % 2 != 0)
    throw std::invalid_argument("tune: baseline_k must be even in [k_min, k_max]");
  if (cfg.max_len < 4 || cfg.max_len > 31)
    throw std::invalid_argument("tune: max_len must be in [4, 31]");
}

}  // namespace

TuneResult run_tune(const bits::TestSet& td, const TuneConfig& cfg) {
  validate(td, cfg);

  const FitnessEvaluator eval(td, cfg.weights, cfg.impl);
  core::ThreadPool pool(cfg.jobs);

  const TuneGenome standard = TuneGenome::standard(cfg.baseline_k);
  const TuneGenome freq = frequency_directed_genome(td, cfg);

  // Generation 0: the two baselines plus mutated copies of them. Slot
  // seeds mix the config seed so --seed reshuffles everything at once.
  std::vector<TuneGenome> pop(cfg.population);
  pop[0] = standard;
  pop[1] = freq;
  for (std::size_t i = 2; i < cfg.population; ++i) {
    std::mt19937_64 rng(mix64(cfg.seed ^ mix64(i)));
    TuneGenome g = i % 2 == 0 ? standard : freq;
    const std::size_t rounds = 1 + draw(rng, 3);
    for (std::size_t m = 0; m < rounds; ++m) mutate(g, rng, cfg);
    pop[i] = g;
  }

  TuneResult result;
  result.frequency_directed = freq;

  const std::size_t elite =
      std::max<std::size_t>(1, std::min(cfg.population - 1, cfg.population / 4));

  for (std::size_t gen = 0; gen < cfg.generations; ++gen) {
    const std::vector<FitnessReport> reports = core::parallel_map(
        pool, pop.size(),
        [&](std::size_t i) { return eval.evaluate(pop[i]); });
    result.evaluations += pop.size();

    // Rank: score descending, population index ascending on ties -- the
    // tie-break that makes the winner independent of evaluation order.
    std::vector<std::size_t> order(pop.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (reports[a].score != reports[b].score)
        return reports[a].score > reports[b].score;
      return a < b;
    });

    GenerationTrace t;
    t.generation = gen;
    t.best_score = reports[order[0]].score;
    double sum = 0.0;
    std::size_t valid = 0;
    for (const FitnessReport& r : reports) {
      if (r.valid) {
        sum += r.score;
        ++valid;
      } else {
        ++t.invalid;
      }
    }
    t.mean_valid_score = valid == 0 ? 0.0 : sum / static_cast<double>(valid);
    result.invalid_genomes += t.invalid;
    result.trace.push_back(t);

    if (gen + 1 == cfg.generations) {
      result.best = pop[order[0]];
      result.best_report = reports[order[0]];
      break;
    }

    // Breed the next generation: elites survive verbatim (so the best
    // score is monotone across generations), the rest are children of
    // elite parents. Each slot's RNG is derived from (seed, gen, slot)
    // alone, never from thread timing.
    std::vector<TuneGenome> next(cfg.population);
    for (std::size_t e = 0; e < elite; ++e) next[e] = pop[order[e]];
    for (std::size_t slot = elite; slot < cfg.population; ++slot) {
      std::mt19937_64 rng(mix64(
          cfg.seed ^ mix64(((gen + 1) << 32) ^ static_cast<std::uint64_t>(slot))));
      const std::size_t ia = draw(rng, elite);
      const std::size_t ib = draw(rng, elite);
      TuneGenome child = crossover(pop[order[ia]], pop[order[ib]], rng);
      const std::size_t rounds = 1 + draw(rng, 3);
      for (std::size_t m = 0; m < rounds; ++m) mutate(child, rng, cfg);
      next[slot] = child;
    }
    pop = std::move(next);
  }

  result.standard_report = eval.evaluate(standard);
  result.frequency_directed_report = eval.evaluate(freq);
  return result;
}

}  // namespace nc::tune
