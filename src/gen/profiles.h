// Published dimensions of the precomputed test sets the paper evaluates on.
//
// The authors use the MinTest compacted test cubes for six ISCAS'89 circuits
// and two proprietary IBM test sets. Neither is redistributable, so this
// library records the *published* dimensions and don't-care densities and
// pairs them with `generate_cubes` to synthesize test sets with the same
// statistical structure (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <vector>

namespace nc::gen {

struct BenchmarkProfile {
  std::string name;
  std::size_t patterns = 0;
  std::size_t width = 0;      // scan cells per pattern
  double x_fraction = 0.0;    // published don't-care density of TD

  std::size_t total_bits() const noexcept { return patterns * width; }
};

/// The six MinTest ISCAS'89 test sets used in Tables II-VII:
/// s5378 (111x214), s9234 (159x247), s13207 (236x700), s15850 (126x611),
/// s38417 (99x1664), s38584 (136x1464), with their published X densities.
const std::vector<BenchmarkProfile>& iscas89_profiles();

/// Lookup by circuit name; throws std::out_of_range when unknown.
const BenchmarkProfile& iscas89_profile(const std::string& name);

/// Stand-ins for the two large IBM test sets of Table VIII (CKT1 ~ tens of
/// Mbit, CKT2 smaller, both X-dominated). Sizes are scaled to what a
/// single-core reproduction sweeps in seconds while preserving the
/// volume ratio and the very high X density that drive the table's shape.
const std::vector<BenchmarkProfile>& ibm_profiles();

}  // namespace nc::gen
