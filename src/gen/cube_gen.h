// Synthetic test-cube generator calibrated to real ATPG statistics.
//
// Real compacted test cubes are not uniform noise: care bits cluster (a
// fault's activation/propagation conditions touch neighbouring scan cells),
// clusters are 0-heavy, and consecutive care bits repeat in runs. All three
// properties matter to run-length- and block-based compression codes, so the
// generator models them explicitly:
//
//   row := alternating X-gaps and care-clusters
//   gap length     ~ geometric, mean chosen to hit the target X fraction
//   cluster length ~ geometric(cluster_len_mean)
//   care values    ~ first bit Bernoulli(zero_bias) toward 0, following bits
//                    repeat the previous value with prob run_correlation
#pragma once

#include <cstdint>

#include "bits/test_set.h"
#include "gen/profiles.h"

namespace nc::gen {

struct CubeGenConfig {
  std::size_t patterns = 100;
  std::size_t width = 500;
  double x_fraction = 0.8;       // target fraction of X bits
  double cluster_len_mean = 6.0; // mean care-cluster length
  double zero_bias = 0.65;       // P(care bit == 0) when starting a run
  double run_correlation = 0.7;  // P(care bit repeats its predecessor)
  std::uint64_t seed = 1;
};

/// Deterministic for a given config. Throws std::invalid_argument for
/// out-of-range probabilities or a zero-sized set.
bits::TestSet generate_cubes(const CubeGenConfig& config);

/// Test set with a published profile's dimensions and X density.
bits::TestSet calibrated_cubes(const BenchmarkProfile& profile,
                               std::uint64_t seed = 1);

}  // namespace nc::gen
