#include "gen/cube_gen.h"

#include <random>
#include <stdexcept>

namespace nc::gen {

using bits::TestSet;
using bits::Trit;

bits::TestSet generate_cubes(const CubeGenConfig& config) {
  if (config.patterns == 0 || config.width == 0)
    throw std::invalid_argument("cube set must be non-empty");
  if (config.x_fraction < 0.0 || config.x_fraction >= 1.0)
    throw std::invalid_argument("x_fraction must be in [0, 1)");
  if (config.cluster_len_mean < 1.0)
    throw std::invalid_argument("cluster_len_mean must be >= 1");
  for (double p : {config.zero_bias, config.run_correlation})
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument("probability out of [0, 1]");

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  // Mean gap length that yields the requested X fraction given the cluster
  // mean: x = gap / (gap + cluster).
  const double gap_mean =
      config.x_fraction <= 0.0
          ? 0.0
          : config.cluster_len_mean * config.x_fraction /
                (1.0 - config.x_fraction);
  // std::geometric_distribution(p) has support {0,1,...} and mean (1-p)/p,
  // so p = 1/(mean+1) gives the requested mean.
  auto geometric = [&](double mean) -> std::size_t {
    if (mean <= 0.0) return 0;
    const double p = 1.0 / (mean + 1.0);
    return std::geometric_distribution<std::size_t>(p)(rng);
  };

  TestSet ts(config.patterns, config.width);
  for (std::size_t row = 0; row < config.patterns; ++row) {
    std::size_t col = 0;
    // Random phase: start either in a gap or in a cluster.
    bool in_gap = uni(rng) < config.x_fraction;
    while (col < config.width) {
      if (in_gap) {
        col += geometric(gap_mean);  // gaps may be empty
      } else {
        // Clusters are at least one bit: mean len = 1 + (mean - 1).
        std::size_t len = 1 + geometric(config.cluster_len_mean - 1.0);
        bool value = uni(rng) >= config.zero_bias;  // true == 1
        while (len-- > 0 && col < config.width) {
          ts.set(row, col++, bits::trit_from_bit(value));
          if (uni(rng) >= config.run_correlation) value = !value;
        }
      }
      in_gap = !in_gap;
    }
  }
  return ts;
}

bits::TestSet calibrated_cubes(const BenchmarkProfile& profile,
                               std::uint64_t seed) {
  CubeGenConfig config;
  config.patterns = profile.patterns;
  config.width = profile.width;
  config.x_fraction = profile.x_fraction;
  config.seed = seed;
  return generate_cubes(config);
}

}  // namespace nc::gen
