#include "gen/profiles.h"

#include <stdexcept>

namespace nc::gen {

const std::vector<BenchmarkProfile>& iscas89_profiles() {
  // Pattern counts and scan widths are the MinTest values quoted throughout
  // the test-compression literature (Chandra & Chakrabarty, TCAD 2001/2003);
  // X densities are the commonly reported fractions for those test sets.
  static const std::vector<BenchmarkProfile> profiles = {
      {"s5378", 111, 214, 0.726},
      {"s9234", 159, 247, 0.730},
      {"s13207", 236, 700, 0.932},
      {"s15850", 126, 611, 0.836},
      {"s38417", 99, 1664, 0.681},
      {"s38584", 136, 1464, 0.823},
  };
  return profiles;
}

const BenchmarkProfile& iscas89_profile(const std::string& name) {
  for (const BenchmarkProfile& p : iscas89_profiles())
    if (p.name == name) return p;
  throw std::out_of_range("unknown ISCAS'89 profile: " + name);
}

const std::vector<BenchmarkProfile>& ibm_profiles() {
  static const std::vector<BenchmarkProfile> profiles = {
      // CKT1: multi-Mbit, extremely X-dominated (big designs specify a tiny
      // fraction of scan cells per pattern). CKT2: roughly half the volume.
      {"CKT1", 1024, 8192, 0.975},
      {"CKT2", 1024, 4096, 0.950},
  };
  return profiles;
}

}  // namespace nc::gen
