// Ablation: are the baseline configurations of Table IV fair? Sweeps each
// baseline's own parameter and reports the average CR across the six test
// sets -- the defaults used in bench_table4_compare sit at (or near) each
// code's sweet spot, so 9C's win is not an artifact of hobbled baselines.
#include <iostream>

#include "baselines/dictionary.h"
#include "baselines/golomb.h"
#include "baselines/lzw.h"
#include "baselines/mtc.h"
#include "baselines/selective_huffman.h"
#include "baselines/vihc.h"
#include "bench_common.h"
#include "codec/nine_coded.h"
#include "report/table.h"

namespace {

template <typename MakeCoder>
double average_cr(MakeCoder make) {
  double sum = 0;
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TritVector td =
        nc::bench::benchmark_cubes(profile).flatten();
    const auto coder = make(td);
    sum += nc::codec::compression_ratio_percent(td.size(),
                                                coder.encode(td).size());
  }
  return sum / static_cast<double>(nc::gen::iscas89_profiles().size());
}

}  // namespace

int main() {
  nc::report::Table out(
      "ABLATION -- baseline parameter sweeps (avg CR% over the six sets)");
  out.set_header({"coder", "parameter", "avg CR%"});

  for (std::size_t m : {2u, 4u, 8u, 16u})
    out.row().add("Golomb").add("m=" + std::to_string(m)).add(
        average_cr([&](const nc::bits::TritVector&) {
          return nc::baselines::Golomb(m);
        }),
        2);
  for (std::size_t m : {2u, 4u, 8u})
    out.row().add("MTC").add("m=" + std::to_string(m)).add(
        average_cr([&](const nc::bits::TritVector&) {
          return nc::baselines::Mtc(m);
        }),
        2);
  for (std::size_t mh : {4u, 8u, 16u, 32u})
    out.row().add("VIHC").add("mh=" + std::to_string(mh)).add(
        average_cr([&](const nc::bits::TritVector& td) {
          return nc::baselines::Vihc::trained(td, mh);
        }),
        2);
  for (auto [b, n] : {std::pair<std::size_t, std::size_t>{8, 8},
                      {8, 16},
                      {12, 16},
                      {16, 16}})
    out.row()
        .add("SelHuff")
        .add("b=" + std::to_string(b) + ",N=" + std::to_string(n))
        .add(average_cr([&, b = b, n = n](const nc::bits::TritVector& td) {
               return nc::baselines::SelectiveHuffman::trained(td, b, n);
             }),
             2);
  for (auto [b, d] : {std::pair<std::size_t, std::size_t>{16, 64},
                      {16, 128},
                      {32, 128},
                      {32, 256}})
    out.row()
        .add("Dict")
        .add("b=" + std::to_string(b) + ",D=" + std::to_string(d))
        .add(average_cr([&, b = b, d = d](const nc::bits::TritVector& td) {
               return nc::baselines::FixedDictionary::trained(td, b, d);
             }),
             2);
  for (unsigned w : {10u, 12u, 14u})
    out.row().add("LZW").add("w=" + std::to_string(w)).add(
        average_cr([&](const nc::bits::TritVector&) {
          return nc::baselines::Lzw(w);
        }),
        2);
  out.separator().row().add("9C").add("best K per circuit").add(
      [&] {
        double sum = 0;
        for (const auto& profile : nc::gen::iscas89_profiles()) {
          const nc::bits::TritVector td =
              nc::bench::benchmark_cubes(profile).flatten();
          double best = -1e18;
          for (std::size_t k : nc::bench::table_k_sweep())
            best = std::max(best, nc::codec::NineCoded(k)
                                      .analyze(td)
                                      .compression_ratio());
          sum += best;
        }
        return sum / 6.0;
      }(),
      2);
  out.print(std::cout);
  std::cout
      << "\nTable IV's defaults sit at or near each baseline's sweet spot. "
         "Pushed further\n(VIHC mh=32, large dictionaries) the trained "
         "coders can edge past 9C's CR --\nbut their decoders grow with the "
         "parameter AND are customized per test set,\nwhile the 9C decoder "
         "is a fixed few-hundred-gate block for any TD. That cost\naxis "
         "(bench_ablation_codes, bench_fig12_decoder) is the paper's actual "
         "claim.\n";
  return 0;
}
