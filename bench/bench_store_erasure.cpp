// Benchmark of the erasure-coded shard tier: the same artifact population
// read three ways -- clean (all shards healthy), degraded (one whole shard
// directory deleted; striped payloads reconstruct from k surviving strips,
// inline payloads fall back to a surviving replica), and post-scrub (the
// repair pass has restored full redundancy). Reports p50/p99 get latency
// for each phase and the scrub's repair throughput, all into
// BENCH_store_erasure.json for the perf trajectory.
//
// The exit code is an acceptance gate, not decoration: every get in every
// phase must return the exact bytes that were put (ZERO wrong payloads,
// degraded included), the degraded phase must actually reconstruct, and
// scrub must end with full redundancy and nothing unrecoverable.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "report/json.h"
#include "report/table.h"
#include "store/sharded_store.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr unsigned kShards = 4;
constexpr unsigned kParity = 1;
constexpr std::size_t kStripeThreshold = 1024;
constexpr std::uint64_t kArtifacts = 320;

nc::store::Key key_of(std::uint64_t n) {
  return nc::store::Key{n * 0x9E3779B97F4A7C15ull + 1, ~n};
}

// Mixed population: ~1/4 inline replicas, the rest striped at various
// sizes, content deterministic per key so reads can be verified exactly.
std::vector<std::uint8_t> payload_of(std::uint64_t n) {
  const std::size_t len = (n % 4 == 0)
                              ? 128 + n % 256
                              : kStripeThreshold * (1 + n % 7) + n % 509;
  std::mt19937_64 rng(n ^ 0xE5C9B63722C2EE79ull);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  return p;
}

nc::store::ShardedStoreConfig config(const fs::path& dir) {
  nc::store::ShardedStoreConfig cfg;
  cfg.dir = dir.string();
  cfg.shards = kShards;
  cfg.parity = kParity;
  cfg.stripe_threshold_bytes = kStripeThreshold;
  cfg.auto_compact = false;
  return cfg;
}

struct Phase {
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  std::uint64_t wrong_payloads = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_read = 0;
  double elapsed_ms = 0;
};

double quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

/// Reads every artifact once in a shuffled order, timing each get and
/// byte-comparing each payload against the generator.
Phase read_phase(nc::store::ShardedStore& store, std::uint64_t seed) {
  std::vector<std::uint64_t> order(kArtifacts);
  for (std::uint64_t n = 0; n < kArtifacts; ++n) order[n] = n;
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  Phase ph;
  std::vector<double> lat_us;
  lat_us.reserve(kArtifacts);
  const auto phase_start = Clock::now();
  for (const std::uint64_t n : order) {
    const auto t0 = Clock::now();
    const nc::store::GetResult got = store.get(key_of(n));
    const auto t1 = Clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    if (got.status != nc::store::GetStatus::kHit) {
      ++ph.misses;
      continue;
    }
    if (got.payload != payload_of(n)) ++ph.wrong_payloads;
    ph.bytes_read += got.payload.size();
  }
  ph.elapsed_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            phase_start)
                      .count();
  std::sort(lat_us.begin(), lat_us.end());
  ph.p50_us = quantile(lat_us, 0.50);
  ph.p99_us = quantile(lat_us, 0.99);
  double sum = 0;
  for (const double v : lat_us) sum += v;
  ph.mean_us = lat_us.empty() ? 0 : sum / static_cast<double>(lat_us.size());
  return ph;
}

nc::report::Json phase_json(const Phase& ph) {
  nc::report::Json j = nc::report::Json::object();
  j["p50_us"] = ph.p50_us;
  j["p99_us"] = ph.p99_us;
  j["mean_us"] = ph.mean_us;
  j["wrong_payloads"] = ph.wrong_payloads;
  j["misses"] = ph.misses;
  j["bytes_read"] = ph.bytes_read;
  j["elapsed_ms"] = ph.elapsed_ms;
  return j;
}

}  // namespace

int main() {
  const fs::path dir = fs::temp_directory_path() / "nc_bench_store_erasure";
  fs::remove_all(dir);

  std::uint64_t total_payload_bytes = 0;

  // Populate, then read back clean through a warm reopen (cold caches,
  // same process -- the comparison point for the degraded run).
  {
    nc::store::ShardedStore store(config(dir));
    for (std::uint64_t n = 0; n < kArtifacts; ++n) {
      const auto payload = payload_of(n);
      total_payload_bytes += payload.size();
      store.put(key_of(n), payload);
    }
  }
  Phase clean;
  nc::store::ShardedStats clean_stats;
  {
    nc::store::ShardedStore store(config(dir));
    clean = read_phase(store, 1);
    clean_stats = store.stats();
  }

  // Kill one whole shard directory; reads must degrade, never lie.
  fs::remove_all(dir / nc::store::ShardedStore::shard_dir_name(1));
  Phase degraded;
  Phase repaired;
  nc::store::ShardedStats degraded_stats;
  nc::store::ScrubReport scrub;
  double scrub_ms = 0;
  {
    nc::store::ShardedStore store(config(dir));
    degraded = read_phase(store, 2);
    degraded_stats = store.stats();

    const auto t0 = Clock::now();
    scrub = store.scrub();
    scrub_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    repaired = read_phase(store, 3);
  }

  const std::uint64_t repairs = scrub.strips_repaired + scrub.heads_repaired +
                                scrub.copies_repaired;
  const double repair_mib_s =
      scrub_ms > 0 ? static_cast<double>(total_payload_bytes) / (1u << 20) /
                         (scrub_ms / 1000.0)
                   : 0;

  nc::report::Table out("Erasure-coded shard tier -- clean vs degraded vs "
                        "post-scrub reads");
  out.set_header({"phase", "p50 us", "p99 us", "mean us", "miss", "wrong"});
  for (const auto& [name, ph] :
       {std::pair<const char*, const Phase&>{"clean", clean},
        {"degraded", degraded},
        {"post-scrub", repaired}}) {
    out.row()
        .add(name)
        .add(ph.p50_us)
        .add(ph.p99_us)
        .add(ph.mean_us)
        .add(ph.misses)
        .add(ph.wrong_payloads);
  }
  out.print(std::cout);
  std::cout << "\nscrub: " << repairs << " records repaired in " << scrub_ms
            << " ms (" << repair_mib_s << " MiB/s over the population), "
            << "degraded reads " << degraded_stats.degraded_reads
            << ", strips reconstructed "
            << degraded_stats.strips_reconstructed << '\n';

  nc::report::Json doc = nc::report::Json::object();
  doc["bench"] = "store_erasure";
  doc["shards"] = static_cast<std::uint64_t>(kShards);
  doc["parity"] = static_cast<std::uint64_t>(kParity);
  doc["stripe_threshold_bytes"] =
      static_cast<std::uint64_t>(kStripeThreshold);
  doc["artifacts"] = kArtifacts;
  doc["payload_bytes"] = total_payload_bytes;
  doc["clean"] = phase_json(clean);
  nc::report::Json deg = phase_json(degraded);
  deg["degraded_reads"] = degraded_stats.degraded_reads;
  deg["strips_reconstructed"] = degraded_stats.strips_reconstructed;
  deg["unrecoverable_reads"] = degraded_stats.unrecoverable_reads;
  doc["degraded"] = std::move(deg);
  doc["post_scrub"] = phase_json(repaired);
  nc::report::Json sj = nc::report::Json::object();
  sj["elapsed_ms"] = scrub_ms;
  sj["strips_repaired"] = scrub.strips_repaired;
  sj["heads_repaired"] = scrub.heads_repaired;
  sj["copies_repaired"] = scrub.copies_repaired;
  sj["unrecoverable"] = scrub.unrecoverable;
  sj["full_redundancy"] = scrub.full_redundancy;
  sj["repair_mib_per_s"] = repair_mib_s;
  doc["scrub"] = std::move(sj);
  nc::report::write_json_file("BENCH_store_erasure.json", doc);
  std::cout << "wrote BENCH_store_erasure.json\n";

  const bool zero_wrong = clean.wrong_payloads == 0 &&
                          degraded.wrong_payloads == 0 &&
                          repaired.wrong_payloads == 0;
  const bool zero_missed = clean.misses == 0 && degraded.misses == 0 &&
                           repaired.misses == 0;
  const bool reconstructed = degraded_stats.degraded_reads > 0 &&
                             degraded_stats.strips_reconstructed > 0;
  const bool healed = scrub.full_redundancy && scrub.unrecoverable == 0 &&
                      repairs > 0;
  std::cout << "zero wrong payloads: " << (zero_wrong ? "yes" : "NO")
            << ", all hits: " << (zero_missed ? "yes" : "NO")
            << ", degraded phase reconstructed: "
            << (reconstructed ? "yes" : "NO")
            << ", scrub healed to full redundancy: "
            << (healed ? "yes" : "NO") << '\n';
  fs::remove_all(dir);
  return zero_wrong && zero_missed && reconstructed && healed ? 0 : 1;
}
