// Chaos benchmark of the serve tier's timing robustness: the loadgen driven
// through a deterministic ChaosStream schedule (resets, stalls, dribbles,
// latency) at three operating points -- clean baseline, chaos, and chaos
// with hedged requests + per-request deadlines -- reporting throughput,
// p50/p99 latency, reconnects, hedges won, deadline sheds and slow-client
// disconnects. Every number also lands in BENCH_serve_chaos.json.
//
// The exit code is the PR's acceptance gate: every run must resolve every
// request with zero lost, corrupted or duplicated replies, and the chaos
// runs must actually have exercised the fault machinery (reconnects > 0).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "report/json.h"
#include "report/table.h"
#include "serve/chaos.h"
#include "serve/loadgen.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace {

using std::chrono::milliseconds;

struct RunResult {
  nc::serve::LoadgenStats load;
  nc::serve::Metrics::Snapshot metrics;
};

RunResult run_point(const nc::serve::ServerConfig& sconfig,
                    const nc::serve::LoadgenConfig& lconfig,
                    const std::vector<nc::serve::ChaosRule>& rules) {
  nc::serve::Server server(sconfig);
  std::atomic<std::uint64_t> connection_no{0};
  RunResult r;
  r.load = nc::serve::run_loadgen(
      lconfig, [&server, &rules, &connection_no] {
        auto [client_end, server_end] = nc::serve::make_pipe();
        server.serve(std::move(server_end));
        if (rules.empty()) return std::move(client_end);
        // Per-connection seeds keep reconnect schedules distinct while the
        // whole run stays reproducible.
        return std::unique_ptr<nc::serve::ByteStream>(
            std::make_unique<nc::serve::ChaosStream>(
                std::move(client_end), rules,
                0x9e3779b9ull + connection_no.fetch_add(1)));
      });
  r.metrics = server.metrics_snapshot();
  server.stop();
  return r;
}

}  // namespace

int main() {
  nc::serve::ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 128;
  sconfig.inflight_cap = 16;
  sconfig.write_deadline = milliseconds(2000);
  sconfig.min_progress_bps = 16;  // generous floor; dribble stays above it
  sconfig.default_deadline_ms = 10000;

  nc::serve::LoadgenConfig base;
  base.clients = 4;
  base.requests_per_client = 40;
  base.pipeline = 4;
  base.distinct = 4;
  base.patterns = 16;
  base.width = 64;
  base.max_retransmits = 30;
  base.retransmit_timeout = milliseconds(50);
  base.deadline = milliseconds(120000);

  const auto chaos_rules = nc::serve::parse_chaos_spec(
      "any:reset@60,write:dribble@10x30,read:stall=20@15x3,"
      "write:latency=2@5x40");

  struct Point {
    const char* name;
    nc::serve::LoadgenConfig load;
    std::vector<nc::serve::ChaosRule> rules;
    bool expect_faults;
  };
  std::vector<Point> points;
  points.push_back({"clean x4", base, {}, false});
  points.push_back({"chaos x4", base, chaos_rules, true});
  {
    nc::serve::LoadgenConfig hedged = base;
    hedged.request_deadline_ms = 5000;
    hedged.hedge_after = milliseconds(300);
    points.push_back({"chaos+hedge x4", hedged, chaos_rules, true});
  }

  nc::report::Table out(
      "Serve tier under a deterministic chaos transport -- 4 clients "
      "(in-process pipes, resets/stalls/dribbles/latency)");
  out.set_header({"scenario", "req/s", "p50 us", "p99 us", "reconn",
                  "retrans", "hedge won", "sheds", "slow/idle", "clean"});

  nc::report::Json doc = nc::report::Json::object();
  doc["bench"] = "serve_chaos";
  doc["clients"] = static_cast<std::uint64_t>(base.clients);
  nc::report::Json runs = nc::report::Json::array();
  bool gate_ok = true;
  for (const Point& point : points) {
    const RunResult r = run_point(sconfig, point.load, point.rules);
    const std::uint64_t expected =
        point.load.clients * point.load.requests_per_client;
    const bool resolved_all = r.load.requests == expected;
    const std::uint64_t sheds = r.metrics.deadline_shed_queue +
                                r.metrics.deadline_shed_decode +
                                r.metrics.deadline_shed_write;
    const std::uint64_t drops =
        r.metrics.slow_client_disconnects + r.metrics.idle_disconnects;
    const bool faults_fired = !point.expect_faults || r.load.reconnects > 0;
    gate_ok = gate_ok && r.load.clean() && resolved_all && faults_fired;

    const auto& lat = r.metrics.request_latency;
    out.row()
        .add(point.name)
        .add(r.load.throughput_rps(), 0)
        .add(lat.quantile_micros(0.50))
        .add(lat.quantile_micros(0.99))
        .add(r.load.reconnects)
        .add(r.load.retransmits)
        .add(r.load.hedge_wins)
        .add(sheds)
        .add(drops)
        .add(r.load.clean() && resolved_all ? "yes" : "NO");

    nc::report::Json run = nc::report::Json::object();
    run["scenario"] = point.name;
    run["requests"] = r.load.requests;
    run["expected_requests"] = expected;
    run["throughput_rps"] = r.load.throughput_rps();
    run["p50_us"] = lat.quantile_micros(0.50);
    run["p99_us"] = lat.quantile_micros(0.99);
    run["reconnects"] = r.load.reconnects;
    run["retransmits"] = r.load.retransmits;
    run["timeouts"] = r.load.timeouts;
    run["hedges"] = r.load.hedges;
    run["hedge_wins"] = r.load.hedge_wins;
    run["typed_rejections"] = r.load.typed_rejections;
    run["deadline_rejections"] = r.load.deadline_rejections;
    run["deadline_shed_queue"] = r.metrics.deadline_shed_queue;
    run["deadline_shed_decode"] = r.metrics.deadline_shed_decode;
    run["deadline_shed_write"] = r.metrics.deadline_shed_write;
    run["slow_client_disconnects"] = r.metrics.slow_client_disconnects;
    run["idle_disconnects"] = r.metrics.idle_disconnects;
    run["write_timeouts"] = r.metrics.write_timeouts;
    run["byte_mismatches"] = r.load.byte_mismatches;
    run["duplicates"] = r.load.duplicates;
    run["unresolved"] = r.load.unresolved;
    run["clean"] = r.load.clean();
    run["resolved_all"] = resolved_all;
    runs.push_back(std::move(run));
  }
  doc["runs"] = std::move(runs);
  out.print(std::cout);

  nc::report::write_json_file("BENCH_serve_chaos.json", doc);
  std::cout << "\nwrote BENCH_serve_chaos.json\n";
  std::cout << "gate (all resolved, zero lost/corrupt/duplicated, chaos "
               "fired): "
            << (gate_ok ? "yes" : "NO") << '\n';
  return gate_ok ? 0 : 1;
}
