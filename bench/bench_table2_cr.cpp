// Reproduces Table II: 9C compression ratio for each ISCAS'89 test set
// across block sizes K = 4..32 (calibrated synthetic cubes stand in for the
// MinTest sets -- see DESIGN.md). Expected shape: CR peaks around K = 8-16
// and decays toward K = 32; the Avg row identifies the best overall K.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "report/table.h"

int main() {
  const auto& ks = nc::bench::table_k_sweep();

  nc::report::Table out("TABLE II -- compression ratio CR% vs block size K");
  std::vector<std::string> header = {"circuit", "|TD|"};
  for (std::size_t k : ks) header.push_back("K=" + std::to_string(k));
  out.set_header(header);

  std::map<std::size_t, double> sum;
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TritVector td =
        nc::bench::benchmark_cubes(profile).flatten();
    out.row().add(profile.name).add(td.size());
    for (std::size_t k : ks) {
      const auto stats = nc::codec::NineCoded(k).analyze(td);
      out.add(stats.compression_ratio(), 2);
      sum[k] += stats.compression_ratio();
    }
  }
  out.separator().row().add("Avg").add("");
  std::size_t best_k = 0;
  double best = -1e9;
  for (std::size_t k : ks) {
    const double avg = sum[k] / nc::gen::iscas89_profiles().size();
    out.add(avg, 2);
    if (avg > best) {
      best = avg;
      best_k = k;
    }
  }
  out.print(std::cout);
  std::cout << "\nbest average CR at K=" << best_k << " (" << best
            << "%); paper reports the peak at K=8-16 with up to ~83% on the "
               "most X-rich sets.\n";
  return 0;
}
