// Channel-fault resilience: detection rate and retry overhead vs fault rate.
//
// The ATE streams each pattern as its own 9C stream (pattern-boundary
// resync) over a fault-injected link; detected corruptions -- a typed
// DecodeError from the decode path or a decoded pattern contradicting a
// specified stimulus bit -- are re-streamed up to 3 times. Reported per
// injected flip rate:
//   corrupt%   transmissions the injector actually altered
//   det-dec%   corrupted transmissions caught by the decode path alone
//   det-cmp%   corrupted transmissions caught by the stimulus compare
//   masked%    corruptions that only touched leftover-X fills (harmless)
//   unrec      patterns whose retry budget ran out
//   ovhd%      extra (wasted) ATE bits relative to the useful payload
//
// Expected shape: detection rises with the fault rate; the undetectable
// residue is exactly the X-masked share (the 9C code is complete, so a
// corrupted-but-specified codeword bit never fails the parse on its own);
// overhead stays small through 1e-3 and grows sharply past 1e-2.
#include <iostream>

#include "bench_common.h"
#include "codec/decode_error.h"
#include "codec/nine_coded.h"
#include "decomp/channel.h"
#include "report/table.h"

int main() {
  const std::size_t k = 8;
  const unsigned max_retries = 3;
  const nc::codec::NineCoded coder(k);

  nc::gen::CubeGenConfig gen_cfg;
  gen_cfg.patterns = 200;
  gen_cfg.width = 600;
  gen_cfg.seed = 1;
  const nc::bits::TestSet cubes = nc::gen::generate_cubes(gen_cfg);

  nc::report::Table out(
      "Channel resilience -- detection rate and retry overhead (K=8, "
      "retries=3)");
  out.set_header({"flip rate", "corrupt%", "det-dec%", "det-cmp%", "masked%",
                  "unrec", "ovhd%"});

  const std::vector<double> rates = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2};
  for (const double rate : rates) {
    nc::decomp::ChannelConfig ch_cfg;
    ch_cfg.flip_rate = rate;
    ch_cfg.seed = 42;
    nc::decomp::ChannelModel channel(ch_cfg);

    std::size_t useful_bits = 0, wasted_bits = 0;
    std::size_t corrupted = 0, det_decode = 0, det_compare = 0, masked = 0;
    std::size_t unrecovered = 0;
    for (std::size_t pat = 0; pat < cubes.pattern_count(); ++pat) {
      const nc::bits::TritVector cube = cubes.pattern(pat);
      const nc::bits::TritVector te = coder.encode(cube);
      bool delivered = false;
      for (unsigned attempt = 0; attempt <= max_retries; ++attempt) {
        const nc::bits::TritVector rx = channel.transmit(te);
        const bool was_corrupted = channel.last_corrupted();
        if (was_corrupted) ++corrupted;
        bool detected = false;
        try {
          const nc::codec::DecodeOutcome decoded =
              coder.decode_checked(rx, cube.size());
          if (!cube.covered_by(decoded.data)) {
            detected = true;
            if (was_corrupted) ++det_compare;
          } else if (was_corrupted) {
            ++masked;
          }
        } catch (const nc::codec::DecodeError&) {
          detected = true;
          if (was_corrupted) ++det_decode;
        }
        if (!detected) {
          useful_bits += rx.size();
          delivered = true;
          break;
        }
        wasted_bits += rx.size();
      }
      if (!delivered) ++unrecovered;
    }

    const auto& stats = channel.stats();
    const double n_tx = static_cast<double>(stats.transmissions);
    const double n_corrupt = corrupted > 0 ? static_cast<double>(corrupted)
                                           : 1.0;  // avoid 0/0 in quiet rows
    out.row()
        .add(rate, 6)
        .add(100.0 * static_cast<double>(corrupted) / n_tx, 2)
        .add(100.0 * static_cast<double>(det_decode) / n_corrupt, 2)
        .add(100.0 * static_cast<double>(det_compare) / n_corrupt, 2)
        .add(100.0 * static_cast<double>(masked) / n_corrupt, 2)
        .add(unrecovered)
        .add(useful_bits > 0
                 ? 100.0 * static_cast<double>(wasted_bits) /
                       static_cast<double>(useful_bits)
                 : 0.0,
             2);
  }
  out.print(std::cout);
  return 0;
}
