// Search-based code tuning vs the paper's fixed assignments (DESIGN.md
// section 16). For each ISCAS'89 set the evolutionary optimizer (CR-favoring
// weights) competes against the standard Table I code and the Table VII
// frequency-directed reassignment, all scored by the same evaluator: real
// encoder CR, TAT cycle accounting, synthesized decoder FSM gates.
//
// Exit 0 iff on at least one set the tuned code reaches the
// frequency-directed CR at equal-or-lower FSM cost -- the claim that a
// search over the full parameter space never does worse than the paper's
// hand reassignment. Results land in BENCH_tune.json for the trajectory.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/thread_pool.h"
#include "report/json.h"
#include "report/table.h"
#include "tune/optimizer.h"

int main() {
  // CR-favoring: compression dominates, gates priced low but non-zero so
  // ties break toward the cheaper decoder.
  nc::tune::TuneConfig cfg;
  cfg.seed = 1;
  cfg.generations = 6;
  cfg.population = 12;
  cfg.jobs = nc::core::ThreadPool::hardware_threads();
  cfg.weights.cr = 1.0;
  cfg.weights.tat = 0.1;
  cfg.weights.gates = 0.02;

  const std::vector<std::string> sets = {"s5378", "s9234", "s13207"};

  nc::report::Table out(
      "Search-based tuning vs standard / frequency-directed 9C");
  out.set_header({"circuit", "code", "CR%", "TAT%", "FSM GE", "score"});

  nc::report::Json doc = nc::report::Json::object();
  doc["seed"] = cfg.seed;
  doc["generations"] = std::uint64_t{cfg.generations};
  doc["population"] = std::uint64_t{cfg.population};
  doc["weights"] = [&] {
    nc::report::Json w = nc::report::Json::object();
    w["cr"] = cfg.weights.cr;
    w["tat"] = cfg.weights.tat;
    w["gates"] = cfg.weights.gates;
    w["p"] = std::uint64_t{cfg.weights.p};
    return w;
  }();
  nc::report::Json circuits = nc::report::Json::object();

  bool gate_passed = false;
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    if (std::find(sets.begin(), sets.end(), profile.name) == sets.end())
      continue;
    const nc::bits::TestSet td = nc::bench::benchmark_cubes(profile);
    const nc::tune::TuneResult r = nc::tune::run_tune(td, cfg);

    const auto add_row = [&](const char* code,
                             const nc::tune::FitnessReport& f) {
      out.row()
          .add(profile.name)
          .add(code)
          .add(f.cr_percent, 2)
          .add(f.tat_percent, 2)
          .add(f.fsm_gates)
          .add(f.score, 2);
    };
    add_row("standard", r.standard_report);
    add_row("freq-dir", r.frequency_directed_report);
    add_row("tuned", r.best_report);

    const bool dominates =
        r.best_report.cr_percent >= r.frequency_directed_report.cr_percent &&
        r.best_report.fsm_gates <= r.frequency_directed_report.fsm_gates;
    gate_passed = gate_passed || dominates;

    nc::report::Json c = nc::report::Json::object();
    const auto fitness = [](const nc::tune::FitnessReport& f) {
      nc::report::Json j = nc::report::Json::object();
      j["cr_percent"] = f.cr_percent;
      j["tat_percent"] = f.tat_percent;
      j["fsm_gates"] = std::uint64_t{f.fsm_gates};
      j["datapath_gates"] = std::uint64_t{f.datapath_gates};
      j["score"] = f.score;
      return j;
    };
    c["standard"] = fitness(r.standard_report);
    c["frequency_directed"] = fitness(r.frequency_directed_report);
    c["tuned"] = fitness(r.best_report);
    c["tuned_dominates_freq_directed"] = dominates;
    c["evaluations"] = std::uint64_t{r.evaluations};
    c["invalid_genomes"] = std::uint64_t{r.invalid_genomes};
    circuits[profile.name] = std::move(c);
  }
  doc["circuits"] = std::move(circuits);
  doc["gate_passed"] = gate_passed;

  out.print(std::cout);
  nc::report::write_json_file("BENCH_tune.json", doc);
  std::cout << "\nwrote BENCH_tune.json\n"
            << (gate_passed
                    ? "GATE PASS: tuned reaches frequency-directed CR at "
                      "equal-or-lower FSM cost on at least one set\n"
                    : "GATE FAIL: tuned never dominates the "
                      "frequency-directed code\n");
  return gate_passed ? 0 : 1;
}
