// Ablation: the paper's Section II trade-off, quantified. Candidate codes:
//   9C fixed        -- the paper's table, decoder independent of TD
//   9C freq-directed-- Table VII re-assignment (same decoder size, rewired)
//   {0,1} Huffman   -- same 9-class partition, per-TD optimal lengths
//   {0,1,A,B} Huff  -- 25 classes with the alternating half patterns the
//                      paper considered and rejected
// For each: CR on the benchmark sets AND the decoder controller cost from
// generic FSM synthesis -- reproducing "may slightly improve the
// compression ratio but results in a more complicated and expensive
// decoder. ... nine codes provide the best tradeoff."
#include <iostream>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "codec/pattern_codec.h"
#include "report/table.h"
#include "synth/code_synth.h"

namespace {

/// Decoder controller cost for a trained PatternCodec.
std::size_t pattern_codec_fsm_gates(const nc::codec::PatternCodec& codec) {
  const std::size_t per_half = codec.patterns().size() + 1;
  std::vector<nc::synth::CodeLeaf> leaves;
  for (std::size_t cls = 0; cls < codec.class_count(); ++cls) {
    if (!codec.table().has_code(cls)) continue;  // class never occurs
    nc::synth::CodeLeaf leaf;
    leaf.word = nc::codec::Codeword{
        static_cast<std::uint32_t>(codec.table().code(cls)),
        codec.table().length(cls)};
    leaf.plan_a = static_cast<unsigned>(cls / per_half);
    leaf.plan_b = static_cast<unsigned>(cls % per_half);
    leaves.push_back(leaf);
  }
  return nc::synth::synthesize_code_fsm(leaves,
                                        static_cast<unsigned>(per_half))
      .total_gate_equivalents();
}

}  // namespace

int main() {
  const std::size_t k = 8;

  nc::report::Table out(
      "ABLATION -- compression vs decoder cost across code variants (K=8)");
  out.set_header({"circuit", "9C fixed", "9C freq-dir", "Huff{01}",
                  "Huff{01AB}"});

  double sum[4] = {0, 0, 0, 0};
  std::size_t worst_gates[4] = {0, 0, 0, 0};
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TritVector td =
        nc::bench::benchmark_cubes(profile).flatten();

    const nc::codec::NineCoded fixed(k);
    const nc::codec::NineCoded tuned = nc::codec::NineCoded::tuned_for(td, k);
    const auto h01 = nc::codec::PatternCodec::trained(
        td, k, nc::codec::nine_coded_patterns());
    const auto h01ab = nc::codec::PatternCodec::trained(
        td, k, nc::codec::extended_patterns());

    const double crs[4] = {
        nc::codec::compression_ratio_percent(td.size(),
                                             fixed.encode(td).size()),
        nc::codec::compression_ratio_percent(td.size(),
                                             tuned.encode(td).size()),
        nc::codec::compression_ratio_percent(td.size(), h01.encode(td).size()),
        nc::codec::compression_ratio_percent(td.size(),
                                             h01ab.encode(td).size()),
    };
    out.row().add(profile.name);
    for (int i = 0; i < 4; ++i) {
      out.add(crs[i], 2);
      sum[i] += crs[i];
    }

    const std::size_t gates[4] = {
        nc::synth::synthesize_code_fsm(
            nc::synth::leaves_for_table(fixed.table()), 3)
            .total_gate_equivalents(),
        nc::synth::synthesize_code_fsm(
            nc::synth::leaves_for_table(tuned.table()), 3)
            .total_gate_equivalents(),
        pattern_codec_fsm_gates(h01),
        pattern_codec_fsm_gates(h01ab),
    };
    for (int i = 0; i < 4; ++i)
      worst_gates[i] = std::max(worst_gates[i], gates[i]);
  }
  const double n = static_cast<double>(nc::gen::iscas89_profiles().size());
  out.separator().row().add("Avg CR%");
  for (double s : sum) out.add(s / n, 2);
  out.row().add("FSM gates (max)");
  for (std::size_t g : worst_gates) out.add(g);
  out.print(std::cout);

  const double gain = (sum[3] - sum[0]) / n;
  const double cost = static_cast<double>(worst_gates[3]) /
                      static_cast<double>(worst_gates[0]);
  std::cout << "\nextended {01AB} code: " << (gain >= 0 ? "+" : "") << gain
            << " CR points on average for " << cost
            << "x the controller gates -- the paper's call: nine codewords "
               "are the sweet spot. Note the trained variants also tie the "
               "decoder to the test set, which fixed 9C avoids.\n";
  return 0;
}
