// Reproduces Fig. 3 / Fig. 4: the three scan architectures -- (a) single
// scan, (b) m chains behind one pin and one decoder, (c) m chains behind
// m/K pins and m/K parallel decoders. Expected shape: (b) cuts pins to 1 at
// ~unchanged test time; (c) trades pins and decoder copies for a ~m/K
// speedup.
#include <iostream>

#include "decomp/multi_scan.h"
#include "gen/cube_gen.h"
#include "report/table.h"
#include "synth/fsm_synth.h"

int main() {
  const nc::bits::TestSet td =
      nc::gen::calibrated_cubes(nc::gen::iscas89_profile("s38417"));
  const std::size_t k = 8;
  const unsigned p = 8;
  const nc::codec::NineCoded coder(k);

  nc::report::Table out(
      "FIG. 3/4 -- scan architectures on an s38417-like set (K=8, p=8)");
  out.set_header({"architecture", "chains", "pins", "decoders", "SoC cycles",
                  "speedup", "CR%", "HW gates"});

  const std::size_t decoder_gates = nc::synth::decoder_gate_estimate(k);
  const auto a = nc::decomp::run_single_scan(td, coder, p);
  auto add_row = [&](const nc::decomp::ArchitectureReport& r) {
    // Hardware: decoder copies plus the staging shifter flops of the
    // single-pin variant (one scan-equivalent flop per chain, ~6 GE).
    const std::size_t staging =
        (r.decoders == 1 && r.chains > 1) ? r.chains * 6 : 0;
    out.row()
        .add(r.name)
        .add(r.chains)
        .add(r.ate_pins)
        .add(r.decoders)
        .add(r.soc_cycles)
        .add(static_cast<double>(a.soc_cycles) /
                 static_cast<double>(r.soc_cycles),
             2)
        .add(r.compression_ratio, 2)
        .add(r.decoders * decoder_gates + staging);
  };
  add_row(a);
  bool ok = true;
  for (std::size_t chains : {16u, 32u, 64u}) {
    const auto b = nc::decomp::run_multi_scan_single_pin(td, chains, coder, p);
    const auto c = nc::decomp::run_multi_scan_banked(td, chains, coder, p);
    add_row(b);
    add_row(c);
    ok = ok && c.soc_cycles < b.soc_cycles && b.ate_pins == 1 &&
         c.ate_pins == chains / k;
  }
  out.print(std::cout);
  std::cout << "\nsingle-pin multi-scan keeps test time while cutting pins "
               "to 1; banked decoders buy speed for pins: "
            << (ok ? "reproduced" : "NOT reproduced") << '\n';
  return ok ? 0 : 1;
}
