// Software throughput of the coders (google-benchmark). Not a paper table;
// documents that the encoder is linear-time and fast enough for the
// multi-Mbit industrial sweeps of Table VIII.
#include <benchmark/benchmark.h>

#include "baselines/fdr.h"
#include "baselines/golomb.h"
#include "codec/nine_coded.h"
#include "gen/cube_gen.h"

namespace {

const nc::bits::TritVector& sample_td() {
  static const nc::bits::TritVector td = [] {
    nc::gen::CubeGenConfig cfg;
    cfg.patterns = 200;
    cfg.width = 1000;
    cfg.x_fraction = 0.85;
    cfg.seed = 42;
    return nc::gen::generate_cubes(cfg).flatten();
  }();
  return td;
}

void BM_NineCodedEncode(benchmark::State& state) {
  const nc::codec::NineCoded coder(static_cast<std::size_t>(state.range(0)));
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}
BENCHMARK(BM_NineCodedEncode)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_NineCodedDecode(benchmark::State& state) {
  const nc::codec::NineCoded coder(static_cast<std::size_t>(state.range(0)));
  const auto& td = sample_td();
  const auto te = coder.encode(td);
  for (auto _ : state)
    benchmark::DoNotOptimize(coder.decode(te, td.size()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}
BENCHMARK(BM_NineCodedDecode)->Arg(8)->Arg(32);

void BM_NineCodedAnalyze(benchmark::State& state) {
  const nc::codec::NineCoded coder(8);
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.analyze(td));
}
BENCHMARK(BM_NineCodedAnalyze);

void BM_FdrEncode(benchmark::State& state) {
  const nc::baselines::Fdr coder;
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
}
BENCHMARK(BM_FdrEncode);

void BM_GolombEncode(benchmark::State& state) {
  const nc::baselines::Golomb coder(4);
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
}
BENCHMARK(BM_GolombEncode);

}  // namespace

BENCHMARK_MAIN();
