// Software throughput of the coders (google-benchmark), plus the perf
// regression gate for the word-parallel bitplane codec. Not a paper table;
// documents that the encoder is linear-time and fast enough for the
// multi-Mbit industrial sweeps of Table VIII. Unless the caller passes its
// own --benchmark_out, results are also written to BENCH_throughput.json.
//
// After the benchmarks run, main() measures the single-thread encode
// throughput of both codec implementations directly and EXITS NONZERO if
//   * the bitplane path is less than 5x the scalar path at the gate K, or
//   * the two implementations disagree on any gate stream (byte compare).
// CI runs this binary, so a change that quietly de-vectorizes the hot path
// -- or breaks its bit-exactness -- fails the build, not just a dashboard.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/fdr.h"
#include "baselines/golomb.h"
#include "bits/bitplane.h"
#include "codec/nine_coded.h"
#include "gen/cube_gen.h"

namespace {

using nc::codec::CodecImpl;
using nc::codec::NineCoded;

const nc::bits::TritVector& sample_td() {
  static const nc::bits::TritVector td = [] {
    nc::gen::CubeGenConfig cfg;
    cfg.patterns = 200;
    cfg.width = 1000;
    cfg.x_fraction = 0.85;
    cfg.seed = 42;
    return nc::gen::generate_cubes(cfg).flatten();
  }();
  return td;
}

void encode_bench(benchmark::State& state, CodecImpl impl) {
  const NineCoded coder(static_cast<std::size_t>(state.range(0)), impl);
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}

void BM_NineCodedEncodeScalar(benchmark::State& state) {
  encode_bench(state, CodecImpl::kScalar);
}
BENCHMARK(BM_NineCodedEncodeScalar)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_NineCodedEncodeBitplane(benchmark::State& state) {
  encode_bench(state, CodecImpl::kBitplane);
}
BENCHMARK(BM_NineCodedEncodeBitplane)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void decode_bench(benchmark::State& state, CodecImpl impl) {
  const NineCoded coder(static_cast<std::size_t>(state.range(0)), impl);
  const auto& td = sample_td();
  const auto te = coder.encode(td);
  for (auto _ : state)
    benchmark::DoNotOptimize(coder.decode(te, td.size()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}

void BM_NineCodedDecodeScalar(benchmark::State& state) {
  decode_bench(state, CodecImpl::kScalar);
}
BENCHMARK(BM_NineCodedDecodeScalar)->Arg(8)->Arg(32);

void BM_NineCodedDecodeBitplane(benchmark::State& state) {
  decode_bench(state, CodecImpl::kBitplane);
}
BENCHMARK(BM_NineCodedDecodeBitplane)->Arg(8)->Arg(32);

void BM_NineCodedAnalyze(benchmark::State& state) {
  const NineCoded coder(8);
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.analyze(td));
}
BENCHMARK(BM_NineCodedAnalyze);

// --------------------------------------------- scan_half before/after/word
// The scalar scan_half used to re-derive the packed word and shift for
// every trit through get(); it now hoists one word load per 32 trits.
// This local copy of the old body is the "before" so the micro-fix stays
// measured in the JSON next to the "after" and the word-parallel scan.

// noinline: the library scan_half is an out-of-line call, so the "before"
// body must be one too -- otherwise this copy fuses into the benchmark
// loop and the comparison measures inlining, not the word hoist.
[[gnu::noinline]] nc::codec::HalfScan scan_half_per_trit_get(
    const nc::bits::TritVector& v, std::size_t begin,
    std::size_t len) noexcept {
  nc::codec::HalfScan scan;
  for (std::size_t i = 0; i < len; ++i) {
    switch (v.get(begin + i)) {
      case nc::bits::Trit::Zero: scan.kind.one_compatible = false; break;
      case nc::bits::Trit::One: scan.kind.zero_compatible = false; break;
      case nc::bits::Trit::X: ++scan.x_count; break;
    }
  }
  return scan;
}

constexpr std::size_t kScanHalf = 16;  // K=32 halves

void BM_ScanHalfPerTritGet(benchmark::State& state) {
  const auto& td = sample_td();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t b = 0; b + kScanHalf <= td.size(); b += kScanHalf)
      acc += scan_half_per_trit_get(td, b, kScanHalf).x_count;
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}
BENCHMARK(BM_ScanHalfPerTritGet);

void BM_ScanHalfHoisted(benchmark::State& state) {
  const auto& td = sample_td();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t b = 0; b + kScanHalf <= td.size(); b += kScanHalf)
      acc += nc::codec::scan_half(td, b, kScanHalf).x_count;
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}
BENCHMARK(BM_ScanHalfHoisted);

void BM_ScanHalfBitplane(benchmark::State& state) {
  const nc::bits::Bitplanes planes(sample_td());
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t b = 0; b + kScanHalf <= planes.size(); b += kScanHalf)
      acc += nc::codec::scan_half(planes, b, kScanHalf).x_count;
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(planes.size()) / 8);
}
BENCHMARK(BM_ScanHalfBitplane);

void BM_FdrEncode(benchmark::State& state) {
  const nc::baselines::Fdr coder;
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
}
BENCHMARK(BM_FdrEncode);

void BM_GolombEncode(benchmark::State& state) {
  const nc::baselines::Golomb coder(4);
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
}
BENCHMARK(BM_GolombEncode);

// ------------------------------------------------------- perf + bit gate

/// Wall-clock MB/s of single-thread encode, measured over ~0.4 s.
double encode_mb_per_s(const NineCoded& coder,
                       const nc::bits::TritVector& td) {
  using clock = std::chrono::steady_clock;
  // Warm up caches and the allocator once before timing.
  benchmark::DoNotOptimize(coder.encode(td));
  const auto t0 = clock::now();
  std::size_t iters = 0;
  while (clock::now() - t0 < std::chrono::milliseconds(400)) {
    benchmark::DoNotOptimize(coder.encode(td));
    ++iters;
  }
  const double secs =
      std::chrono::duration<double>(clock::now() - t0).count();
  const double bytes =
      static_cast<double>(iters) * static_cast<double>(td.size()) / 8.0;
  return bytes / secs / 1e6;
}

/// The ship gate. Byte-identity is checked at every K the encoder benches;
/// the throughput ratio is gated at kGateK, the block size that amortizes
/// the per-block codeword bookkeeping enough to expose the word-parallel
/// payload path (at tiny K both impls are dominated by per-block control:
/// K=32 measures ~5x on an idle machine, K=64 holds 7-9x even under load,
/// so the 5x bar at K=64 has real headroom against CI noise).
int run_codec_gate() {
  constexpr std::size_t kGateK = 64;
  constexpr double kRequiredSpeedup = 5.0;
  const auto& td = sample_td();

  for (std::size_t k : {4u, 8u, 16u, 32u, 62u, 64u, 66u}) {
    const NineCoded scalar(k, CodecImpl::kScalar);
    const NineCoded bitplane(k, CodecImpl::kBitplane);
    if (!(scalar.encode(td) == bitplane.encode(td))) {
      std::fprintf(stderr,
                   "GATE FAIL: scalar and bitplane TE differ at K=%zu\n", k);
      return 1;
    }
  }

  const NineCoded scalar(kGateK, CodecImpl::kScalar);
  const NineCoded bitplane(kGateK, CodecImpl::kBitplane);
  const double scalar_mbs = encode_mb_per_s(scalar, td);
  const double bitplane_mbs = encode_mb_per_s(bitplane, td);
  const double speedup = bitplane_mbs / scalar_mbs;
  std::printf(
      "codec gate (K=%zu): scalar %.1f MB/s, bitplane %.1f MB/s, "
      "speedup %.2fx (required >= %.1fx), streams byte-identical\n",
      kGateK, scalar_mbs, bitplane_mbs, speedup, kRequiredSpeedup);
  if (speedup < kRequiredSpeedup) {
    std::fprintf(stderr, "GATE FAIL: bitplane/scalar speedup %.2fx < %.1fx\n",
                 speedup, kRequiredSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_throughput.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool caller_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
      caller_out = true;
  if (!caller_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_codec_gate();
}
