// Software throughput of the coders (google-benchmark). Not a paper table;
// documents that the encoder is linear-time and fast enough for the
// multi-Mbit industrial sweeps of Table VIII. Unless the caller passes its
// own --benchmark_out, results are also written to BENCH_throughput.json.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baselines/fdr.h"
#include "baselines/golomb.h"
#include "codec/nine_coded.h"
#include "gen/cube_gen.h"

namespace {

const nc::bits::TritVector& sample_td() {
  static const nc::bits::TritVector td = [] {
    nc::gen::CubeGenConfig cfg;
    cfg.patterns = 200;
    cfg.width = 1000;
    cfg.x_fraction = 0.85;
    cfg.seed = 42;
    return nc::gen::generate_cubes(cfg).flatten();
  }();
  return td;
}

void BM_NineCodedEncode(benchmark::State& state) {
  const nc::codec::NineCoded coder(static_cast<std::size_t>(state.range(0)));
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}
BENCHMARK(BM_NineCodedEncode)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_NineCodedDecode(benchmark::State& state) {
  const nc::codec::NineCoded coder(static_cast<std::size_t>(state.range(0)));
  const auto& td = sample_td();
  const auto te = coder.encode(td);
  for (auto _ : state)
    benchmark::DoNotOptimize(coder.decode(te, td.size()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(td.size()) / 8);
}
BENCHMARK(BM_NineCodedDecode)->Arg(8)->Arg(32);

void BM_NineCodedAnalyze(benchmark::State& state) {
  const nc::codec::NineCoded coder(8);
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.analyze(td));
}
BENCHMARK(BM_NineCodedAnalyze);

void BM_FdrEncode(benchmark::State& state) {
  const nc::baselines::Fdr coder;
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
}
BENCHMARK(BM_FdrEncode);

void BM_GolombEncode(benchmark::State& state) {
  const nc::baselines::Golomb coder(4);
  const auto& td = sample_td();
  for (auto _ : state) benchmark::DoNotOptimize(coder.encode(td));
}
BENCHMARK(BM_GolombEncode);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_throughput.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool caller_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
      caller_out = true;
  if (!caller_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
