// Ablation: what the don't-cares are worth. The paper's Section I argument
// is that ATPG-style random fill destroys compressibility: every coder is
// run on the same test sets before and after pre-filling the X bits.
// Expected shape: CR collapses (often to data *expansion*) once X is gone;
// MT-fill retains some run structure; 9C on raw cubes wins by a wide margin.
#include <iostream>

#include "baselines/fdr.h"
#include "bench_common.h"
#include "codec/nine_coded.h"
#include "power/fill.h"
#include "report/table.h"

int main() {
  const std::size_t k = 8;
  const nc::codec::NineCoded coder(k);
  const nc::baselines::Fdr fdr;

  nc::report::Table out(
      "ABLATION -- CR% with don't-cares kept vs pre-filled (K=8)");
  out.set_header({"circuit", "9C raw", "9C rnd-fill", "9C MT-fill",
                  "FDR raw", "FDR rnd-fill"});

  double sum[5] = {0, 0, 0, 0, 0};
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TestSet cubes = nc::bench::benchmark_cubes(profile);
    const nc::bits::TestSet random =
        nc::power::fill(cubes, nc::power::FillStrategy::kRandom, 11);
    const nc::bits::TestSet mt =
        nc::power::fill(cubes, nc::power::FillStrategy::kMinTransition);

    const double crs[5] = {
        nc::codec::compression_ratio_percent(
            cubes.bit_count(), coder.encode(cubes.flatten()).size()),
        nc::codec::compression_ratio_percent(
            cubes.bit_count(), coder.encode(random.flatten()).size()),
        nc::codec::compression_ratio_percent(
            cubes.bit_count(), coder.encode(mt.flatten()).size()),
        nc::codec::compression_ratio_percent(
            cubes.bit_count(), fdr.encode(cubes.flatten()).size()),
        nc::codec::compression_ratio_percent(
            cubes.bit_count(), fdr.encode(random.flatten()).size()),
    };
    out.row().add(profile.name);
    for (int i = 0; i < 5; ++i) {
      out.add(crs[i], 2);
      sum[i] += crs[i];
    }
  }
  const double n = static_cast<double>(nc::gen::iscas89_profiles().size());
  out.separator().row().add("Avg");
  for (double s : sum) out.add(s / n, 2);
  out.print(std::cout);

  std::cout << "\nrandom fill erases " << (sum[0] - sum[1]) / n
            << " CR points of 9C on average (FDR loses "
            << (sum[3] - sum[4]) / n
            << ") -- why compression must run BEFORE fill, and why codes "
               "that keep leftover X (9C mismatch payloads) still allow "
               "later fill for non-modeled defects.\n";
  return 0;
}
