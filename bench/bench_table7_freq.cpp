// Reproduces Table VII: compression ratio after frequency-directed codeword
// re-assignment, per circuit and block size, next to the standard-table CR.
// Expected shape: small, never-negative improvements, largest on circuits
// whose codeword statistics violate the default order (Table VI).
#include <iostream>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "report/table.h"

int main() {
  const auto& ks = nc::bench::table_k_sweep();

  nc::report::Table out(
      "TABLE VII -- CR% with frequency-directed codeword re-assignment "
      "(delta vs standard in parentheses)");
  std::vector<std::string> header = {"circuit"};
  for (std::size_t k : ks) header.push_back("K=" + std::to_string(k));
  out.set_header(header);

  bool never_worse = true;
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TritVector td =
        nc::bench::benchmark_cubes(profile).flatten();
    out.row().add(profile.name);
    for (std::size_t k : ks) {
      const double std_cr =
          nc::codec::NineCoded(k).analyze(td).compression_ratio();
      const nc::codec::NineCoded tuned = nc::codec::NineCoded::tuned_for(td, k);
      const double fd_cr = tuned.analyze(td).compression_ratio();
      never_worse = never_worse && fd_cr >= std_cr - 1e-9;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.2f (%+.2f)", fd_cr, fd_cr - std_cr);
      out.add(std::string(buf));
    }
  }
  out.print(std::cout);
  std::cout << "\nfrequency-directed assignment never hurts on its training "
               "set: " << (never_worse ? "yes" : "NO")
            << " (paper: slight improvements for s5378/s9234/s15850)\n";
  return never_worse ? 0 : 1;
}
