// Fleet resilience: 16 devices with mixed link-fault profiles through the
// fleet session manager (watchdog + retry + circuit breaker + NC9J
// checkpoint journal).
//
// Reported per scenario:
//   pat/s     fleet throughput, patterns applied per wall-clock second
//   ATE bits  useful bits streamed (all devices)
//   waste%    wasted ATE bits (re-streamed attempts) / useful bits
//   retries   total re-streams across the fleet
//   wdog      decode attempts stopped by the step-budget watchdog
//   quarant   devices quarantined by the circuit breaker
//   skipped   patterns never applied (quarantine windows)
//
// The final section measures checkpoint overhead: the same mixed-fleet run
// with a journal record appended at every batch boundary versus without.
// Each checkpoint is one buffered append of a few KB to an already-open
// stream, so the expected overhead is well under 2% of wall time.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "atpg/atpg.h"
#include "circuit/generator.h"
#include "decomp/fleet.h"
#include "report/json.h"
#include "report/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

nc::decomp::ChannelConfig channel(double flip, double burst = 0.0,
                                  double trunc = 0.0) {
  nc::decomp::ChannelConfig cfg;
  cfg.flip_rate = flip;
  cfg.burst_rate = burst;
  cfg.burst_length = 16;
  cfg.truncate_rate = trunc;
  return cfg;
}

/// 16 devices: half clean, a mild-noise block, two bursty links, one
/// truncating link and one hopeless one -- the production mix the breaker
/// exists for.
std::vector<nc::decomp::DeviceProfile> mixed_fleet() {
  std::vector<nc::decomp::DeviceProfile> devices(16);
  for (std::size_t i = 8; i < 12; ++i) devices[i].channel = channel(1e-3);
  devices[12].channel = channel(3e-3, 1e-4);
  devices[13].channel = channel(3e-3, 1e-4);
  devices[14].channel = channel(1e-3, 0.0, 5e-3);
  devices[15].channel = channel(0.35);  // retry cannot save this link
  return devices;
}

}  // namespace

int main() {
  // A mid-size generated circuit and its own ATPG patterns: big enough for
  // per-pattern TEs of a few hundred bits, small enough to finish in
  // seconds.
  nc::circuit::GeneratorConfig gen_cfg;
  gen_cfg.num_gates = 900;
  gen_cfg.num_inputs = 48;
  gen_cfg.num_flops = 96;
  gen_cfg.seed = 3;
  const nc::circuit::Netlist netlist = nc::circuit::generate_circuit(gen_cfg);
  const nc::bits::TestSet tests =
      nc::atpg::generate_tests(netlist, nc::atpg::AtpgConfig{}).tests;

  nc::decomp::FleetConfig base;
  base.batch_patterns = 8;
  base.jobs = 0;  // one worker per hardware thread
  base.seed = 17;

  struct Scenario {
    const char* name;
    std::vector<nc::decomp::DeviceProfile> devices;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean x16", std::vector<nc::decomp::DeviceProfile>(16)});
  {
    std::vector<nc::decomp::DeviceProfile> mild(16);
    for (auto& d : mild) d.channel = channel(1e-3);
    scenarios.push_back({"mild 1e-3 x16", std::move(mild)});
  }
  scenarios.push_back({"mixed profiles", mixed_fleet()});

  nc::report::Table out("Fleet resilience -- 16 devices, " +
                        std::to_string(tests.pattern_count()) +
                        " patterns each (K=8, retries=3, breaker 3/2)");
  out.set_header({"scenario", "pat/s", "ATE bits", "waste%", "retries",
                  "wdog", "quarant", "skipped"});

  nc::report::Json doc = nc::report::Json::object();
  doc["bench"] = "fleet_resilience";
  doc["devices"] = 16;
  doc["patterns_per_device"] =
      static_cast<std::uint64_t>(tests.pattern_count());
  nc::report::Json rows = nc::report::Json::array();

  for (const Scenario& scenario : scenarios) {
    const auto start = Clock::now();
    const nc::decomp::FleetResult r =
        nc::decomp::run_fleet(netlist, tests, base, scenario.devices);
    const double elapsed = seconds_since(start);
    std::size_t applied = 0;
    for (const auto& d : r.devices) applied += d.session.patterns_applied;

    nc::report::Json row = nc::report::Json::object();
    row["scenario"] = scenario.name;
    row["patterns_per_s"] =
        elapsed > 0 ? static_cast<double>(applied) / elapsed : 0.0;
    row["ate_bits"] = static_cast<std::uint64_t>(r.ate_bits);
    row["wasted_ate_bits"] = static_cast<std::uint64_t>(r.wasted_ate_bits);
    row["retries"] = static_cast<std::uint64_t>(r.retries);
    row["watchdog_trips"] = static_cast<std::uint64_t>(r.watchdog_trips);
    row["quarantined"] = static_cast<std::uint64_t>(r.quarantined);
    row["patterns_skipped"] =
        static_cast<std::uint64_t>(r.patterns_skipped);
    rows.push_back(std::move(row));

    out.row()
        .add(scenario.name)
        .add(elapsed > 0 ? static_cast<double>(applied) / elapsed : 0.0, 0)
        .add(r.ate_bits)
        .add(r.ate_bits > 0
                 ? 100.0 * static_cast<double>(r.wasted_ate_bits) /
                       static_cast<double>(r.ate_bits)
                 : 0.0,
             2)
        .add(r.retries)
        .add(r.watchdog_trips)
        .add(r.quarantined)
        .add(r.patterns_skipped);
  }
  out.print(std::cout);

  // ---- checkpoint overhead: mixed fleet, journal on vs off -------------
  const std::string journal = "bench_fleet_resilience.nc9j.tmp";
  const auto devices = mixed_fleet();
  // One rep = one run of each variant back to back, so both see the same
  // machine noise; best-of-5 then discards scheduler hiccups.
  auto one_run = [&](bool checkpoint) {
    nc::decomp::FleetConfig cfg = base;
    if (checkpoint) cfg.checkpoint_path = journal;
    std::remove(journal.c_str());
    const auto start = Clock::now();
    (void)nc::decomp::run_fleet(netlist, tests, cfg, devices);
    return seconds_since(start);
  };
  (void)one_run(false);  // warm-up
  double without = 1e9;
  double with = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    without = std::min(without, one_run(false));
    with = std::min(with, one_run(true));
  }
  std::remove(journal.c_str());
  const double overhead =
      without > 0 ? 100.0 * (with - without) / without : 0.0;
  std::printf(
      "\ncheckpoint journal: %.3fs -> %.3fs per mixed-fleet run "
      "(%+.2f%% overhead, target < 2%%)\n",
      without, with, overhead);

  doc["rows"] = std::move(rows);
  doc["checkpoint_seconds_without"] = without;
  doc["checkpoint_seconds_with"] = with;
  doc["checkpoint_overhead_percent"] = overhead;
  nc::report::write_json_file("BENCH_fleet_resilience.json", doc);
  std::printf("wrote BENCH_fleet_resilience.json\n");
  return 0;
}
