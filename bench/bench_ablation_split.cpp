// Ablation: why split the block into two halves at all? Compare against a
// "3C" whole-block code (classes: 0-compatible '0', 1-compatible '10',
// mismatch '11'+K raw bits). Expected shape: the half split pays for its
// extra codewords by rescuing half of every block whose other half
// mismatches -- 9C beats 3C at every K on realistic cubes, and the gap
// widens with K (bigger blocks mismatch more often).
#include <iostream>

#include "bench_common.h"
#include "codec/block_class.h"
#include "codec/nine_coded.h"
#include "report/table.h"

namespace {

/// |TE| of the whole-block 3C code: blocks classified with the same
/// compatibility rules, sizes 1 / 2 / 2+K.
std::size_t three_coded_bits(const nc::bits::TritVector& td, std::size_t k) {
  nc::bits::TritVector padded = td;
  if (padded.size() % k != 0)
    padded.append_run(k - padded.size() % k, nc::bits::Trit::X);
  std::size_t total = 0;
  for (std::size_t b = 0; b < padded.size(); b += k) {
    const auto kind = nc::codec::classify_half(padded, b, k);
    if (kind.zero_compatible)
      total += 1;
    else if (kind.one_compatible)
      total += 2;
    else
      total += 2 + k;
  }
  return total;
}

}  // namespace

int main() {
  nc::report::Table out(
      "ABLATION -- two-half 9C vs whole-block 3C, CR% (9C / 3C)");
  std::vector<std::string> header = {"circuit"};
  const std::vector<std::size_t> ks = {8, 16, 32};
  for (std::size_t k : ks) header.push_back("K=" + std::to_string(k));
  out.set_header(header);

  bool nine_always_wins = true;
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TritVector td =
        nc::bench::benchmark_cubes(profile).flatten();
    out.row().add(profile.name);
    for (std::size_t k : ks) {
      const double nine = nc::codec::compression_ratio_percent(
          td.size(), nc::codec::NineCoded(k).encode(td).size());
      const double three = nc::codec::compression_ratio_percent(
          td.size(), three_coded_bits(td, k));
      nine_always_wins = nine_always_wins && nine > three;
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.1f / %.1f", nine, three);
      out.add(std::string(buf));
    }
  }
  out.print(std::cout);
  std::cout << "\n9C beats the whole-block code everywhere: "
            << (nine_always_wins ? "yes" : "NO")
            << " -- the half split is what makes large blocks viable.\n";
  return nine_always_wins ? 0 : 1;
}
