// Reproduces Fig. 1 / Fig. 2: the single-scan decompressor and its FSM.
// (a) synthesizes the FSM with the Quine-McCluskey substrate and prints the
//     two-level cover of every next-state/control function plus the gate
//     count -- the paper's "the FSM was synthesized with Design Compiler
//     and is tiny / independent of K and of the test set" claim;
// (b) sizes the full decoder (FSM + counter + shifter + MUX) across K;
// (c) drives the cycle-accurate decoder on a sample stream as a smoke test.
#include <iostream>

#include "codec/nine_coded.h"
#include "decomp/single_scan.h"
#include "gen/cube_gen.h"
#include "report/table.h"
#include "synth/fsm_synth.h"

int main() {
  // (a) FSM synthesis.
  const nc::synth::FsmSynthesisResult fsm = nc::synth::synthesize_decoder_fsm();
  nc::report::Table logic("FIG. 2 -- decoder FSM synthesized to two-level logic");
  logic.set_header({"output", "product terms", "literals", "gate equivalents"});
  for (const auto& o : fsm.outputs) {
    logic.row()
        .add(o.name)
        .add(o.cover.size())
        .add(o.cost.literals)
        .add(o.cost.gate_equivalents());
  }
  logic.print(std::cout);
  std::cout << "FSM totals: " << fsm.combinational_gates()
            << " combinational GE + " << fsm.state_flops
            << " state flops = " << fsm.total_gate_equivalents()
            << " GE -- independent of K and of the test set.\n\n";

  // (b) Full decoder size across K.
  nc::report::Table size("FIG. 1 -- decoder gate-equivalent estimate vs K");
  size.set_header({"K", "gate equivalents"});
  for (std::size_t k : {4u, 8u, 16u, 32u, 48u})
    size.row().add(k).add(nc::synth::decoder_gate_estimate(k));
  size.print(std::cout);

  // (c) Smoke test: the hardware model decodes a calibrated stream.
  const nc::bits::TritVector td =
      nc::gen::calibrated_cubes(nc::gen::iscas89_profile("s9234")).flatten();
  const nc::codec::NineCoded coder(8);
  const nc::bits::TritVector te = coder.encode(td);
  const nc::decomp::SingleScanDecoder decoder(8, 8);
  const auto trace = decoder.run(te, td.size());
  const bool ok = td.covered_by(trace.scan_stream);
  std::cout << "\ncycle-accurate decode of s9234-like stream: "
            << trace.codewords << " codewords, " << trace.soc_cycles
            << " SoC cycles, care bits reproduced: " << (ok ? "yes" : "NO")
            << '\n';
  return ok ? 0 : 1;
}
