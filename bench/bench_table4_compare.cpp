// Reproduces Table IV: 9C against the published coding baselines -- FDR,
// VIHC, MTC, selective Huffman (plus Golomb and EFDR as extra references) --
// on the same test sets. Per circuit, 9C uses its best K from the Table II
// sweep, as the paper's "K" column does. Expected shape: 9C's average CR
// beats or matches the run-length codes on these X-rich sets.
#include <algorithm>
#include <iostream>
#include <memory>

#include "baselines/dictionary.h"
#include "baselines/fdr.h"
#include "baselines/golomb.h"
#include "baselines/lzw.h"
#include "baselines/mtc.h"
#include "baselines/selective_huffman.h"
#include "baselines/vihc.h"
#include "bench_common.h"
#include "codec/nine_coded.h"
#include "report/table.h"

int main() {
  using nc::codec::compression_ratio_percent;

  nc::report::Table out("TABLE IV -- CR% of 9C vs baseline codes");
  out.set_header({"circuit", "K", "9C", "FDR", "EFDR", "Golomb", "VIHC",
                  "MTC", "SelHuff", "LZW", "Dict"});

  const std::size_t columns = 9;
  std::vector<double> sum(columns, 0.0);
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TritVector td =
        nc::bench::benchmark_cubes(profile).flatten();

    // Best-K 9C, as in the paper's per-circuit K column.
    std::size_t best_k = 8;
    double best_cr = -1e18;
    for (std::size_t k : nc::bench::table_k_sweep()) {
      const double cr = nc::codec::NineCoded(k).analyze(td).compression_ratio();
      if (cr > best_cr) {
        best_cr = cr;
        best_k = k;
      }
    }

    std::vector<std::unique_ptr<nc::codec::Codec>> coders;
    coders.push_back(std::make_unique<nc::codec::NineCoded>(best_k));
    coders.push_back(std::make_unique<nc::baselines::Fdr>());
    coders.push_back(std::make_unique<nc::baselines::Efdr>());
    coders.push_back(std::make_unique<nc::baselines::Golomb>(4));
    coders.push_back(std::make_unique<nc::baselines::Vihc>(
        nc::baselines::Vihc::trained(td, 8)));
    coders.push_back(std::make_unique<nc::baselines::Mtc>(4));
    coders.push_back(std::make_unique<nc::baselines::SelectiveHuffman>(
        nc::baselines::SelectiveHuffman::trained(td, 8, 8)));
    coders.push_back(std::make_unique<nc::baselines::Lzw>(12));
    coders.push_back(std::make_unique<nc::baselines::FixedDictionary>(
        nc::baselines::FixedDictionary::trained(td, 32, 128)));

    out.row().add(profile.name).add(best_k);
    for (std::size_t i = 0; i < coders.size(); ++i) {
      const double cr =
          compression_ratio_percent(td.size(), coders[i]->encode(td).size());
      out.add(cr, 2);
      sum[i] += cr;
    }
  }
  out.separator().row().add("Avg").add("");
  const double n = static_cast<double>(nc::gen::iscas89_profiles().size());
  for (std::size_t i = 0; i < columns; ++i) out.add(sum[i] / n, 2);
  out.print(std::cout);

  std::cout << "\npaper's claim: 9C's average CR exceeds FDR, VIHC, MTC and "
               "selective Huffman on these sets -- here 9C avg "
            << sum[0] / n << "% vs best baseline avg "
            << *std::max_element(sum.begin() + 1, sum.end()) / n << "%.\n";
  return 0;
}
