// Reproduces Table V: test-application-time reduction TAT% for SoC scan
// clocks p = 8, 16, 24 times the ATE clock. The analytic model is cross-
// checked cycle-for-cycle against the decoder simulator on every circuit.
// Expected shape: TAT% is bounded above by CR% and approaches it as p grows.
#include <iostream>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "decomp/single_scan.h"
#include "decomp/timing.h"
#include "report/table.h"

int main() {
  const std::vector<unsigned> ps = {8, 16, 24};
  const std::size_t k = 8;
  const nc::codec::NineCoded coder(k);

  nc::report::Table out(
      "TABLE V -- test application time reduction TAT% (K=8)");
  out.set_header({"circuit", "CR%", "p=8", "p=16", "p=24", "sim==model"});

  std::vector<double> sum(ps.size(), 0.0);
  double sum_cr = 0.0;
  bool all_match = true;
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TritVector td =
        nc::bench::benchmark_cubes(profile).flatten();
    nc::bits::TritVector te;
    const auto stats = coder.analyze(td, &te);
    out.row().add(profile.name).add(stats.compression_ratio(), 2);
    sum_cr += stats.compression_ratio();
    bool match = true;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const double tat = nc::decomp::tat_percent(stats, coder.table(), ps[i]);
      out.add(tat, 2);
      sum[i] += tat;
      const nc::decomp::SingleScanDecoder decoder(k, ps[i]);
      match = match && decoder.run(te, td.size()).soc_cycles ==
                           nc::decomp::comp_soc_cycles(stats, coder.table(),
                                                       ps[i]);
    }
    out.add(match ? "yes" : "NO");
    all_match = all_match && match;
  }
  out.separator().row().add("Avg");
  const double n = static_cast<double>(nc::gen::iscas89_profiles().size());
  out.add(sum_cr / n, 2);
  for (std::size_t i = 0; i < ps.size(); ++i) out.add(sum[i] / n, 2);
  out.add(all_match ? "yes" : "NO");
  out.print(std::cout);

  std::cout << "\nTAT% is bounded by CR% and approaches it as p grows "
               "(paper: avg TAT ~56% already at p=8 on a slow ATE).\n";
  return all_match ? 0 : 1;
}
