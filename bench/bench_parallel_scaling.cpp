// Scaling of the sharded parallel encode/decode pipeline (codec/sharded.h).
//
// Sweeps worker counts 1..max(8, hardware_concurrency) on the largest
// bundled cube set (s38417, 99 x 1664) with a fixed shard count equal to
// the widest sweep point, so every row produces the byte-identical
// container and the sweep isolates pool scaling. Reports encode and decode
// throughput, speedup over jobs=1, and the shard-index overhead (which the
// acceptance gate bounds below 2% of the container). Wall-clock speedups
// are hardware-dependent, so the asserted invariants are correctness ones:
// identical containers across the sweep and a round-trip that covers TD.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "codec/sharded.h"
#include "core/thread_pool.h"
#include "report/json.h"
#include "report/table.h"

namespace {

/// Best-of-`reps` wall time of `fn`, in seconds.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  const auto& profiles = nc::gen::iscas89_profiles();
  const auto largest = std::max_element(
      profiles.begin(), profiles.end(),
      [](const auto& a, const auto& b) { return a.total_bits() < b.total_bits(); });
  const nc::bits::TestSet td = nc::bench::benchmark_cubes(*largest);
  const nc::codec::NineCoded coder(8);

  const std::size_t max_jobs =
      std::max<std::size_t>(8, nc::core::ThreadPool::hardware_threads());
  std::vector<std::size_t> sweep = {1};
  for (std::size_t j = 2; j <= max_jobs; j *= 2) sweep.push_back(j);
  const std::size_t shards = sweep.back();
  const int reps = 5;

  nc::report::Table out("Parallel sharded pipeline on " + largest->name +
                        " (" + std::to_string(td.bit_count()) +
                        " bits, K=8, " + std::to_string(shards) +
                        " shards, best of " + std::to_string(reps) +
                        "; hardware threads: " +
                        std::to_string(nc::core::ThreadPool::hardware_threads()) +
                        ")");
  out.set_header({"jobs", "enc Mbit/s", "enc speedup", "dec Mbit/s",
                  "dec speedup", "index %"});

  nc::codec::ShardedStats stats;
  const nc::bits::TritVector reference =
      nc::codec::encode_sharded(coder, td, shards, 1, &stats);
  const double mbits = static_cast<double>(td.bit_count()) / 1e6;

  nc::report::Json doc = nc::report::Json::object();
  doc["bench"] = "parallel_scaling";
  doc["circuit"] = largest->name;
  doc["bits"] = static_cast<std::uint64_t>(td.bit_count());
  doc["shards"] = static_cast<std::uint64_t>(shards);
  doc["hardware_threads"] =
      static_cast<std::uint64_t>(nc::core::ThreadPool::hardware_threads());
  nc::report::Json rows = nc::report::Json::array();

  bool deterministic = true;
  double enc_base = 0.0, dec_base = 0.0;
  double enc_speedup_at_8 = 1.0;
  for (const std::size_t jobs : sweep) {
    nc::bits::TritVector container;
    const double enc_s = best_seconds(reps, [&] {
      container = nc::codec::encode_sharded(coder, td, shards, jobs);
    });
    deterministic = deterministic && container == reference;
    nc::bits::TestSet back;
    const double dec_s = best_seconds(reps, [&] {
      back = nc::codec::decode_sharded(coder, container, jobs);
    });
    deterministic =
        deterministic && td.flatten().covered_by(back.flatten());
    if (jobs == 1) {
      enc_base = enc_s;
      dec_base = dec_s;
    }
    if (jobs == 8) enc_speedup_at_8 = enc_base / enc_s;
    out.row()
        .add(jobs)
        .add(mbits / enc_s, 2)
        .add(enc_base / enc_s, 2)
        .add(mbits / dec_s, 2)
        .add(dec_base / dec_s, 2)
        .add(stats.index_overhead_percent(), 3);

    nc::report::Json row = nc::report::Json::object();
    row["jobs"] = static_cast<std::uint64_t>(jobs);
    row["encode_mbit_s"] = mbits / enc_s;
    row["encode_speedup"] = enc_base / enc_s;
    row["decode_mbit_s"] = mbits / dec_s;
    row["decode_speedup"] = dec_base / dec_s;
    rows.push_back(std::move(row));
  }
  out.print(std::cout);

  std::cout << "\nshard index: " << stats.header_bits << " of "
            << stats.total_bits << " container bits ("
            << stats.index_overhead_percent() << "%), payload "
            << stats.payload_bits << " bits\n";
  std::cout << "encode speedup at 8 jobs: " << enc_speedup_at_8
            << "x (target >= 3x on >= 8 hardware threads)\n";
  std::cout << "containers byte-identical across the sweep: "
            << (deterministic ? "yes" : "NO") << '\n';

  const bool overhead_ok = stats.index_overhead_percent() < 2.0;
  std::cout << "index overhead < 2%: " << (overhead_ok ? "yes" : "NO")
            << '\n';

  doc["rows"] = std::move(rows);
  doc["index_overhead_percent"] = stats.index_overhead_percent();
  doc["encode_speedup_at_8"] = enc_speedup_at_8;
  doc["deterministic"] = deterministic;
  nc::report::write_json_file("BENCH_parallel_scaling.json", doc);
  std::cout << "wrote BENCH_parallel_scaling.json\n";
  return deterministic && overhead_ok ? 0 : 1;
}
