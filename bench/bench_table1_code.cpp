// Reproduces Table I: the 9C coding for K=8 -- the nine cases, their
// codewords, what the decoder receives, and the coded size; verifies the
// code is prefix-free with Kraft sum exactly 1.
#include <iostream>

#include "codec/codeword_table.h"
#include "report/table.h"

int main() {
  using nc::codec::BlockClass;
  const std::size_t k = 8;
  const nc::codec::CodewordTable table = nc::codec::CodewordTable::standard();

  const char* description[] = {
      "all 0s",
      "all 1s",
      "left half 0s, right half 1s",
      "left half 1s, right half 0s",
      "left half 0s, right half mismatch",
      "left half mismatch, right half 0s",
      "left half 1s, right half mismatch",
      "left half mismatch, right half 1s",
      "all mismatch",
  };

  nc::report::Table out("TABLE I -- 9C coding for K=" + std::to_string(k));
  out.set_header({"case", "description", "codeword", "decoder input",
                  "size (bits)"});
  for (std::size_t c = 0; c < nc::codec::kNumClasses; ++c) {
    const auto cls = static_cast<BlockClass>(c);
    const std::string word = table.at(cls).to_string();
    const std::size_t payload = nc::codec::payload_trits(cls, k);
    std::string decoder_input = word;
    for (std::size_t i = 0; i < payload; ++i) decoder_input += 'U';
    out.row()
        .add(std::size_t{c + 1})
        .add(description[c])
        .add(word)
        .add(decoder_input)
        .add(table.at(cls).length + payload);
  }
  out.print(std::cout);

  double kraft = 0.0;
  for (std::size_t c = 0; c < nc::codec::kNumClasses; ++c)
    kraft += 1.0 / (1u << table.length(static_cast<BlockClass>(c)));
  std::cout << "\nprefix-free: " << (table.prefix_free() ? "yes" : "NO")
            << ", Kraft sum: " << kraft
            << ", max codeword length: " << table.max_length()
            << " (paper: at most five ATE cycles per codeword)\n";
  return table.prefix_free() ? 0 : 1;
}
