// Reproduces Table VI: occurrence count N_i of each codeword per circuit
// (K=8). Expected shape: C1 dominates everywhere (it has the 1-bit
// codeword), C2 second, C9 usually third -- the justification for the
// default length assignment -- with occasional circuits violating the order
// (the hook for Table VII's frequency-directed re-assignment).
#include <algorithm>
#include <array>
#include <iostream>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "report/table.h"

int main() {
  const nc::codec::NineCoded coder(8);

  nc::report::Table out("TABLE VI -- codeword statistics N1..N9 (K=8)");
  out.set_header({"circuit", "N1", "N2", "N3", "N4", "N5", "N6", "N7", "N8",
                  "N9", "order holds"});

  std::array<std::size_t, nc::codec::kNumClasses> total{};
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const auto stats =
        coder.analyze(nc::bench::benchmark_cubes(profile).flatten());
    out.row().add(profile.name);
    for (std::size_t c = 0; c < nc::codec::kNumClasses; ++c) {
      out.add(stats.counts[c]);
      total[c] += stats.counts[c];
    }
    // "order holds": the core claim -- C1 dominates and C2 is second (the
    // two shortest codewords). Whether C9 or a C5..C8 case comes third
    // varies by test set; a violation is exactly what Table VII's
    // frequency-directed re-assignment monetizes.
    const auto& n = stats.counts;
    const std::size_t rest =
        std::max({n[2], n[3], n[4], n[5], n[6], n[7], n[8]});
    const bool holds = n[0] >= n[1] && n[1] >= rest;
    out.add(holds ? "yes" : "no");
  }
  out.separator().row().add("Total");
  for (std::size_t c = 0; c < nc::codec::kNumClasses; ++c) out.add(total[c]);
  const std::size_t rest = std::max(
      {total[2], total[3], total[4], total[5], total[6], total[7], total[8]});
  const bool agg = total[0] >= total[1] && total[1] >= rest;
  out.add(agg ? "yes" : "no");
  out.print(std::cout);

  std::cout << "\npaper: C1 always occurs most (1-bit codeword), C2 second; "
               "the third place (C9 in the paper, C5/C6 on these synthetic "
               "sets) is what Table VII's re-assignment optimizes.\n";
  return agg ? 0 : 1;
}
