// Reproduces Table VIII: 9C on two very large, very X-rich industrial-style
// test sets (stand-ins for the proprietary IBM circuits -- see DESIGN.md).
// Expected shape: compression keeps improving to much larger K than on the
// ISCAS sets (the paper reports maxima at K=48 and K=32), because X-runs
// are long enough to keep big blocks uniform.
#include <iostream>

#include "codec/nine_coded.h"
#include "gen/cube_gen.h"
#include "report/table.h"

int main() {
  const std::vector<std::size_t> ks = {8, 16, 24, 32, 48, 64};

  nc::report::Table out("TABLE VIII -- CR% on large IBM-style test sets");
  std::vector<std::string> header = {"circuit", "X%", "|TD| (Mbit)"};
  for (std::size_t k : ks) header.push_back("K=" + std::to_string(k));
  header.push_back("peak");
  out.set_header(header);

  for (const auto& profile : nc::gen::ibm_profiles()) {
    const nc::bits::TritVector td =
        nc::gen::calibrated_cubes(profile, 1).flatten();
    out.row()
        .add(profile.name)
        .add(100.0 * td.x_fraction(), 1)
        .add(static_cast<double>(td.size()) / 1048576.0, 1);
    std::size_t best_k = 0;
    double best = -1e18;
    for (std::size_t k : ks) {
      const double cr = nc::codec::NineCoded(k).analyze(td).compression_ratio();
      out.add(cr, 2);
      if (cr > best) {
        best = cr;
        best_k = k;
      }
    }
    out.add("K=" + std::to_string(best_k));
  }
  out.print(std::cout);
  std::cout << "\npaper: the large-circuit maxima move to K=48 / K=32 -- "
               "far above the ISCAS sweet spot -- because industrial test "
               "sets are even more X-dominated.\n";
  return 0;
}
