// Benchmark of the persistent artifact store as the serve layer's L2 tier:
// the same workload against a cold store (every artifact computed and
// written through) and against a warm restart on the same directory (the
// in-memory cache is empty, so first touches must come from the store),
// reporting p50/p99 request latency for both, the warm run's L2 hit count,
// and the space a compaction pass reclaims from churn garbage. Every number
// lands in BENCH_store.json for the perf trajectory.
//
// The exit code is an acceptance gate: both runs must be clean (loadgen
// verifies every reply byte-identical to its serial reference), the warm
// run must actually hit the store, and compaction must reclaim bytes.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "report/json.h"
#include "report/table.h"
#include "serve/loadgen.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "store/store.h"

namespace {

namespace fs = std::filesystem;

struct RunResult {
  nc::serve::LoadgenStats load;
  nc::serve::Metrics::Snapshot metrics;
  nc::store::StoreStats store;
};

RunResult run_point(const nc::serve::ServerConfig& sconfig,
                    const nc::serve::LoadgenConfig& lconfig) {
  nc::serve::Server server(sconfig);
  RunResult r;
  r.load = nc::serve::run_loadgen_inprocess(lconfig, server);
  r.metrics = server.metrics_snapshot();
  r.store = server.store_stats();
  server.stop();
  return r;
}

nc::report::Json run_json(const char* name, const RunResult& r) {
  const auto& lat = r.metrics.request_latency;
  nc::report::Json run = nc::report::Json::object();
  run["scenario"] = name;
  run["requests"] = r.load.requests;
  run["throughput_rps"] = r.load.throughput_rps();
  run["p50_us"] = lat.quantile_micros(0.50);
  run["p99_us"] = lat.quantile_micros(0.99);
  run["mean_us"] = lat.mean_micros();
  run["l1_hits"] = r.metrics.l1_hits;
  run["l2_hits"] = r.metrics.l2_hits;
  run["misses"] = r.metrics.misses;
  run["revalidation_failures"] = r.metrics.revalidation_failures;
  run["store_records"] = r.store.records;
  run["store_live_bytes"] = r.store.live_bytes;
  run["clean"] = r.load.clean();
  return run;
}

}  // namespace

int main() {
  const fs::path dir = fs::temp_directory_path() / "nc_bench_store";
  fs::remove_all(dir);

  nc::serve::ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 128;
  sconfig.inflight_cap = 16;
  sconfig.store_dir = dir.string();

  nc::serve::LoadgenConfig lconfig;
  lconfig.clients = 8;
  lconfig.requests_per_client = 40;
  lconfig.pipeline = 4;
  lconfig.distinct = 8;
  lconfig.patterns = 16;
  lconfig.width = 64;

  // Cold: empty directory, every distinct artifact is computed once and
  // written through. Warm: a fresh server process-equivalent on the same
  // directory -- its L1 is empty, so each artifact's first touch must be
  // served by the persistent store, never recomputed.
  const RunResult cold = run_point(sconfig, lconfig);
  const RunResult warm = run_point(sconfig, lconfig);

  // Compaction: churn the store directly (erase + re-put makes garbage in
  // every segment), then measure what one full pass gives back.
  std::uint64_t reclaimed = 0;
  nc::store::StoreStats compacted;
  {
    nc::store::StoreConfig cfg;
    cfg.dir = dir.string();
    cfg.segment_target_bytes = 16u << 10;
    cfg.auto_compact = false;
    nc::store::Store store(cfg);
    std::mt19937_64 rng(42);
    std::vector<std::uint8_t> blob(1024);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
    for (std::uint64_t n = 0; n < 256; ++n)
      store.put(nc::store::Key{n + 1000, ~n}, blob);
    for (std::uint64_t n = 0; n < 256; n += 2)
      store.erase(nc::store::Key{n + 1000, ~n});
    reclaimed = store.compact(0.0);
    compacted = store.stats();
  }

  nc::report::Table out(
      "Persistent artifact store -- cold vs warm restart (in-process pipes)");
  out.set_header({"scenario", "req/s", "p50 us", "p99 us", "l1", "l2",
                  "miss", "clean"});
  for (const auto& [name, r] :
       {std::pair<const char*, const RunResult&>{"cold store", cold},
        {"warm restart", warm}}) {
    const auto& lat = r.metrics.request_latency;
    out.row()
        .add(name)
        .add(r.load.throughput_rps(), 0)
        .add(lat.quantile_micros(0.50))
        .add(lat.quantile_micros(0.99))
        .add(r.metrics.l1_hits)
        .add(r.metrics.l2_hits)
        .add(r.metrics.misses)
        .add(r.load.clean() ? "yes" : "NO");
  }
  out.print(std::cout);
  std::cout << "\ncompaction reclaimed " << reclaimed << " bytes ("
            << compacted.compactions << " segments retired, "
            << compacted.records_moved << " records moved)\n";

  nc::report::Json doc = nc::report::Json::object();
  doc["bench"] = "store";
  doc["clients"] = static_cast<std::uint64_t>(lconfig.clients);
  nc::report::Json runs = nc::report::Json::array();
  runs.push_back(run_json("cold", cold));
  runs.push_back(run_json("warm", warm));
  doc["runs"] = std::move(runs);
  nc::report::Json comp = nc::report::Json::object();
  comp["bytes_reclaimed"] = reclaimed;
  comp["segments_retired"] = compacted.compactions;
  comp["records_moved"] = compacted.records_moved;
  comp["dead_bytes_after"] = compacted.dead_bytes;
  doc["compaction"] = std::move(comp);
  nc::report::write_json_file("BENCH_store.json", doc);
  std::cout << "wrote BENCH_store.json\n";

  const bool clean = cold.load.clean() && warm.load.clean();
  const bool warm_hit_store = warm.metrics.l2_hits > 0;
  const bool cold_never_hit_store = cold.metrics.l2_hits == 0;
  std::cout << "all runs clean: " << (clean ? "yes" : "NO")
            << ", warm run served from store: "
            << (warm_hit_store ? "yes" : "NO")
            << ", compaction reclaimed space: "
            << (reclaimed > 0 ? "yes" : "NO") << '\n';
  fs::remove_all(dir);
  return clean && warm_hit_store && cold_never_hit_store && reclaimed > 0
             ? 0
             : 1;
}
