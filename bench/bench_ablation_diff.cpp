// Ablation: difference-vector preprocessing (the related-work idea behind
// "alternating run-length coding using FDR"). Two findings, both asserted
// by shape:
//  1. On *unordered* pattern sets, diff HURTS -- consecutive rows are
//     uncorrelated, so XOR densifies the stream. Diff only pays after
//     test-vector reordering (greedy nearest-neighbour by Hamming
//     distance), which manufactures the row-to-row correlation it needs.
//  2. Even the best fill(+reorder)+diff pipeline stays far behind plain 9C
//     on the raw cubes: compression belongs BEFORE X-fill.
#include <algorithm>
#include <iostream>
#include <vector>

#include "baselines/fdr.h"
#include "bench_common.h"
#include "codec/diff.h"
#include "codec/nine_coded.h"
#include "power/fill.h"
#include "report/table.h"

namespace {

std::size_t hamming(const nc::bits::TritVector& a,
                    const nc::bits::TritVector& b) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += a.get(i) != b.get(i);
  return d;
}

/// Greedy nearest-neighbour reordering: classic test-vector ordering for
/// power/compression. O(n^2 w), fine at MinTest sizes.
nc::bits::TestSet reorder_by_similarity(const nc::bits::TestSet& ts) {
  std::vector<nc::bits::TritVector> rows;
  for (std::size_t p = 0; p < ts.pattern_count(); ++p)
    rows.push_back(ts.pattern(p));
  std::vector<bool> used(rows.size(), false);
  nc::bits::TestSet out(0, ts.pattern_length());
  std::size_t current = 0;
  used[0] = true;
  out.append_pattern(rows[0]);
  for (std::size_t step = 1; step < rows.size(); ++step) {
    std::size_t best = rows.size();
    std::size_t best_d = ~std::size_t{0};
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (used[r]) continue;
      const std::size_t d = hamming(rows[current], rows[r]);
      if (d < best_d) {
        best_d = d;
        best = r;
      }
    }
    used[best] = true;
    out.append_pattern(rows[best]);
    current = best;
  }
  return out;
}

}  // namespace

int main() {
  const nc::codec::NineCoded nine(8);
  const nc::baselines::Fdr fdr;

  nc::report::Table out(
      "ABLATION -- difference-vector preprocessing on MT-filled sets (CR%)");
  out.set_header({"circuit", "9C raw-X", "9C MT-fill", "9C MT+diff",
                  "9C reorder+diff", "FDR MT+diff", "FDR reorder+diff"});

  double sum[6] = {0, 0, 0, 0, 0, 0};
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const nc::bits::TestSet cubes = nc::bench::benchmark_cubes(profile);
    const nc::bits::TestSet filled =
        nc::power::fill(cubes, nc::power::FillStrategy::kMinTransition);
    const nc::bits::TestSet diffed = nc::codec::difference_transform(filled);
    const nc::bits::TestSet reordered =
        nc::codec::difference_transform(reorder_by_similarity(filled));

    const std::size_t n = cubes.bit_count();
    const double crs[6] = {
        nc::codec::compression_ratio_percent(
            n, nine.encode(cubes.flatten()).size()),
        nc::codec::compression_ratio_percent(
            n, nine.encode(filled.flatten()).size()),
        nc::codec::compression_ratio_percent(
            n, nine.encode(diffed.flatten()).size()),
        nc::codec::compression_ratio_percent(
            n, nine.encode(reordered.flatten()).size()),
        nc::codec::compression_ratio_percent(
            n, fdr.encode(diffed.flatten()).size()),
        nc::codec::compression_ratio_percent(
            n, fdr.encode(reordered.flatten()).size()),
    };
    out.row().add(profile.name);
    for (int i = 0; i < 6; ++i) {
      out.add(crs[i], 2);
      sum[i] += crs[i];
    }
  }
  const double n = static_cast<double>(nc::gen::iscas89_profiles().size());
  out.separator().row().add("Avg");
  for (double s : sum) out.add(s / n, 2);
  out.print(std::cout);

  std::cout << "\nvector reordering buys diff " << (sum[3] - sum[2]) / n
            << " CR points (9C) / " << (sum[5] - sum[4]) / n
            << " (FDR), but keeping the X bits is still worth "
            << (sum[0] - std::max(sum[3], sum[5])) / n
            << " points over the best fill pipeline -- compression belongs "
               "before fill.\n";
  return 0;
}
