// X-tolerant response compaction: coverage loss and verdict throughput
// versus environment X-density (DESIGN.md section 15).
//
// One generated scan circuit (response wide enough for the Steiner code to
// actually compact) plus its own ATPG patterns, swept over X densities
// {0, 0.1%, 1%, 5%, 20%} for each code construction:
//
//   ratio    n / m, raw response bits per compacted bit
//   cov%     compacted stuck-at coverage
//   loss%    coverage_uncompacted - coverage_compacted
//   >t cyc   capture cycles whose tester-visible X count exceeds t
//   MISR%    signature-register coverage ("poisoned" when an X reached it)
//   kverd/s  fault verdicts per second through the analyzer
//
// Exit gates (the bench fails, not just reports):
//  * tolerance_violations == 0 everywhere -- a masked single-bit diff in a
//    within-tolerance cycle would disprove the code's (1, t)-separability;
//  * zero coverage loss whenever every capture cycle stays within the
//    code's tolerance t (the paper-level "free compaction" claim).
// Every number also lands in BENCH_compact.json.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "atpg/atpg.h"
#include "circuit/generator.h"
#include "compact/analyzer.h"
#include "compact/xcode.h"
#include "report/json.h"
#include "report/table.h"
#include "sim/fault.h"

namespace {

using Clock = std::chrono::steady_clock;

struct CodeUnderTest {
  const char* name;
  nc::compact::XCode code;
};

}  // namespace

int main() {
  nc::circuit::GeneratorConfig gen_cfg;
  gen_cfg.num_inputs = 10;
  gen_cfg.num_flops = 28;
  gen_cfg.num_gates = 220;
  gen_cfg.num_outputs = 10;
  gen_cfg.seed = 9;
  const nc::circuit::Netlist netlist = nc::circuit::generate_circuit(gen_cfg);
  // Fully specified stimulus (the decompressor's fill of the ATPG cubes):
  // the only unknowns are then the environment overlay's, so the
  // within-tolerance gate actually engages at the low densities instead of
  // being vacuously true behind stimulus X.
  const nc::bits::TestSet tests = nc::atpg::random_fill(
      nc::atpg::generate_tests(netlist, nc::atpg::AtpgConfig{}).tests, 11);
  const std::vector<nc::sim::Fault> faults = nc::sim::full_fault_list(netlist);
  const std::size_t n = netlist.response_width();

  const std::vector<double> densities = {0.0, 0.001, 0.01, 0.05, 0.2};
  std::vector<CodeUnderTest> codes;
  codes.push_back({"identity", nc::compact::XCode::identity(n)});
  codes.push_back({"steiner", nc::compact::XCode::steiner(n)});
  codes.push_back(
      {"greedy", nc::compact::XCode::greedy(n, n - n / 4, 2, 3, 7)});

  nc::report::Table out(
      "X-tolerant compaction on generated scan circuit (" +
      std::to_string(n) + "-bit response, " +
      std::to_string(tests.pattern_count()) + " patterns, " +
      std::to_string(faults.size()) + " faults)");
  out.set_header({"code", "m", "t", "x%", "ratio", "cov%", "loss%", ">t cyc",
                  "MISR%", "kverd/s"});

  nc::report::Json doc = nc::report::Json::object();
  doc["bench"] = "compact";
  doc["response_width"] = static_cast<std::uint64_t>(n);
  doc["patterns"] = static_cast<std::uint64_t>(tests.pattern_count());
  doc["faults"] = static_cast<std::uint64_t>(faults.size());
  nc::report::Json rows = nc::report::Json::array();

  bool gates_ok = true;
  for (const CodeUnderTest& cut : codes) {
    for (double density : densities) {
      nc::compact::AnalyzerConfig acfg;
      acfg.x_density = density;
      acfg.x_seed = 5;  // fixed across the sweep so the X sets nest
      acfg.jobs = 0;
      const nc::compact::ResponseAnalyzer analyzer(netlist, cut.code, acfg);
      const auto start = Clock::now();
      const nc::compact::AnalyzerReport rep = analyzer.analyze(tests, faults);
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      const double verdicts_per_s =
          elapsed > 0 ? static_cast<double>(rep.faults) / elapsed : 0.0;

      if (rep.tolerance_violations != 0) {
        std::fprintf(stderr,
                     "GATE FAILED: %s at x=%g: %zu tolerance violations "
                     "(masked single-bit diff within t=%u)\n",
                     cut.name, density, rep.tolerance_violations,
                     rep.tolerance);
        gates_ok = false;
      }
      if (rep.cycles_over_tolerance == 0 && rep.masked_by_compaction != 0) {
        std::fprintf(stderr,
                     "GATE FAILED: %s at x=%g: %zu faults masked although "
                     "every cycle stayed within tolerance\n",
                     cut.name, density, rep.masked_by_compaction);
        gates_ok = false;
      }

      out.row()
          .add(cut.name)
          .add(rep.compact_outputs)
          .add(static_cast<std::size_t>(rep.tolerance))
          .add(100.0 * density, 1)
          .add(rep.compaction_ratio(), 2)
          .add(rep.coverage_compacted_percent(), 2)
          .add(rep.coverage_loss_percent(), 3)
          .add(rep.cycles_over_tolerance)
          .add(rep.misr_good_poisoned ? 0.0 : rep.misr_coverage_percent(), 2)
          .add(verdicts_per_s / 1e3, 1);

      nc::report::Json row = nc::report::Json::object();
      row["code"] = cut.name;
      row["outputs"] = static_cast<std::uint64_t>(rep.compact_outputs);
      row["tolerance"] = static_cast<std::uint64_t>(rep.tolerance);
      row["x_density"] = density;
      row["compaction_ratio"] = rep.compaction_ratio();
      row["coverage_compacted_percent"] = rep.coverage_compacted_percent();
      row["coverage_loss_percent"] = rep.coverage_loss_percent();
      row["masked_by_compaction"] =
          static_cast<std::uint64_t>(rep.masked_by_compaction);
      row["tolerance_violations"] =
          static_cast<std::uint64_t>(rep.tolerance_violations);
      row["cycles_over_tolerance"] =
          static_cast<std::uint64_t>(rep.cycles_over_tolerance);
      row["max_cycle_x"] = static_cast<std::uint64_t>(rep.max_cycle_x);
      row["total_x"] = rep.total_x;
      row["misr_poisoned"] = rep.misr_good_poisoned;
      row["misr_coverage_percent"] =
          rep.misr_good_poisoned ? 0.0 : rep.misr_coverage_percent();
      row["verdicts_per_s"] = verdicts_per_s;
      rows.push_back(std::move(row));
    }
  }
  out.print(std::cout);

  doc["rows"] = std::move(rows);
  doc["gates_ok"] = gates_ok;
  nc::report::write_json_file("BENCH_compact.json", doc);
  std::printf("\nwrote BENCH_compact.json\n");
  if (!gates_ok) {
    std::fprintf(stderr, "bench_compact: acceptance gates FAILED\n");
    return 1;
  }
  return 0;
}
