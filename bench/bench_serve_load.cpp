// Load benchmark of the compression service (src/serve): an in-process
// Server driven by the loadgen at three operating points -- clean channel,
// fault-injected channel, and deliberate overload -- reporting throughput,
// p50/p99 request latency, cache hit rate and rejection rate. Every number
// also lands in BENCH_serve_load.json for the perf trajectory.
//
// The exit code is an acceptance gate: all runs must be clean (every reply
// byte-identical to the serial reference or a typed error; zero lost,
// duplicated or corrupted responses).
#include <cstdint>
#include <iostream>
#include <string>

#include "report/json.h"
#include "report/table.h"
#include "serve/loadgen.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace {

struct RunResult {
  nc::serve::LoadgenStats load;
  nc::serve::Metrics::Snapshot metrics;
  nc::serve::CacheStats cache;
};

RunResult run_point(const nc::serve::ServerConfig& sconfig,
                    const nc::serve::LoadgenConfig& lconfig) {
  nc::serve::Server server(sconfig);
  RunResult r;
  r.load = nc::serve::run_loadgen_inprocess(lconfig, server);
  r.metrics = server.metrics_snapshot();
  r.cache = server.cache_stats();
  server.stop();
  return r;
}

}  // namespace

int main() {
  nc::serve::ServerConfig sconfig;
  sconfig.worker_threads = 2;
  sconfig.queue_capacity = 128;
  sconfig.inflight_cap = 16;

  nc::serve::LoadgenConfig base;
  base.clients = 8;
  base.requests_per_client = 40;
  base.pipeline = 4;
  base.distinct = 6;
  base.patterns = 16;
  base.width = 64;

  struct Point {
    const char* name;
    nc::serve::ServerConfig server;
    nc::serve::LoadgenConfig load;
  };
  std::vector<Point> points;
  points.push_back({"clean x8", sconfig, base});
  {
    nc::serve::LoadgenConfig faulty = base;
    faulty.fault_period = 4;
    faulty.channel.flip_rate = 2e-3;
    faulty.channel.truncate_rate = 0.05;
    points.push_back({"faulty ch x8", sconfig, faulty});
  }
  {
    // Overload: a tiny queue and inflight cap against an aggressive
    // pipeline, so admission control has to reject.
    nc::serve::ServerConfig tight = sconfig;
    tight.queue_capacity = 4;
    tight.inflight_cap = 2;
    tight.batch_window = std::chrono::milliseconds(5);
    nc::serve::LoadgenConfig heavy = base;
    heavy.pipeline = 8;
    points.push_back({"overload x8", tight, heavy});
  }

  nc::report::Table out(
      "Compression service under load -- 8 concurrent clients "
      "(in-process pipes, K=8)");
  out.set_header({"scenario", "req/s", "p50 us", "p99 us", "hit%", "rej%",
                  "retrans", "clean"});

  nc::report::Json doc = nc::report::Json::object();
  doc["bench"] = "serve_load";
  doc["clients"] = static_cast<std::uint64_t>(base.clients);
  nc::report::Json runs = nc::report::Json::array();
  bool all_clean = true;
  for (const Point& point : points) {
    const RunResult r = run_point(point.server, point.load);
    all_clean = all_clean && r.load.clean();
    const auto& lat = r.metrics.request_latency;
    out.row()
        .add(point.name)
        .add(r.load.throughput_rps(), 0)
        .add(lat.quantile_micros(0.50))
        .add(lat.quantile_micros(0.99))
        .add(100.0 * r.cache.hit_rate(), 1)
        .add(100.0 * r.metrics.rejection_rate(), 1)
        .add(r.load.retransmits)
        .add(r.load.clean() ? "yes" : "NO");

    nc::report::Json run = nc::report::Json::object();
    run["scenario"] = point.name;
    run["requests"] = r.load.requests;
    run["throughput_rps"] = r.load.throughput_rps();
    run["p50_us"] = lat.quantile_micros(0.50);
    run["p99_us"] = lat.quantile_micros(0.99);
    run["mean_us"] = lat.mean_micros();
    run["cache_hit_rate"] = r.cache.hit_rate();
    run["rejection_rate"] = r.metrics.rejection_rate();
    run["typed_rejections"] = r.load.typed_rejections;
    run["retransmits"] = r.load.retransmits;
    run["corrupted_sends"] = r.load.corrupted_sends;
    run["frame_errors"] = r.load.frame_errors;
    run["byte_mismatches"] = r.load.byte_mismatches;
    run["duplicates"] = r.load.duplicates;
    run["unresolved"] = r.load.unresolved;
    run["mean_batch_size"] = r.metrics.mean_batch_size();
    run["clean"] = r.load.clean();
    runs.push_back(std::move(run));
  }
  doc["runs"] = std::move(runs);
  out.print(std::cout);

  nc::report::write_json_file("BENCH_serve_load.json", doc);
  std::cout << "\nwrote BENCH_serve_load.json\n";
  std::cout << "all runs clean (byte-identical or typed error): "
            << (all_clean ? "yes" : "NO") << '\n';
  return all_clean ? 0 : 1;
}
