// Reproduces Table III: leftover don't-care percentage (LX%) per circuit
// and block size, next to the original X% of each test set. Expected shape:
// LX grows monotonically with K (nearly zero at K=4, maximum at K=32) --
// larger blocks mismatch more often, so more X bits travel verbatim.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "report/table.h"

int main() {
  const auto& ks = nc::bench::table_k_sweep();

  nc::report::Table out(
      "TABLE III -- leftover don't-cares LX% vs block size K");
  std::vector<std::string> header = {"circuit", "X%"};
  for (std::size_t k : ks) header.push_back("K=" + std::to_string(k));
  out.set_header(header);

  std::map<std::size_t, double> sum;
  for (const auto& profile : nc::gen::iscas89_profiles()) {
    const auto cubes = nc::bench::benchmark_cubes(profile);
    const nc::bits::TritVector td = cubes.flatten();
    out.row().add(profile.name).add(100.0 * cubes.x_fraction(), 1);
    for (std::size_t k : ks) {
      const auto stats = nc::codec::NineCoded(k).analyze(td);
      out.add(stats.leftover_x_percent(), 2);
      sum[k] += stats.leftover_x_percent();
    }
  }
  out.separator().row().add("Avg").add("");
  bool monotone = true;
  double prev = -1.0;
  for (std::size_t k : ks) {
    const double avg = sum[k] / nc::gen::iscas89_profiles().size();
    out.add(avg, 2);
    if (avg < prev) monotone = false;
    prev = avg;
  }
  out.print(std::cout);
  std::cout << "\naverage LX% monotone in K: " << (monotone ? "yes" : "NO")
            << " (paper: LX is maximal at K=32 and ~0 at K=4; leftover X can "
               "be filled for non-modeled faults or low power)\n";
  return monotone ? 0 : 1;
}
