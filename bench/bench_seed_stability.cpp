// Calibration confidence: Table II's shape must not hinge on one lucky RNG
// seed. Regenerates every test set with five different seeds and reports
// the min/mean/max average-CR per K; the rise-peak-decay shape and the peak
// location must be stable (asserted).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "codec/nine_coded.h"
#include "report/table.h"

int main() {
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  const auto& ks = nc::bench::table_k_sweep();

  // avg_cr[seed index][k index] = average CR over the six circuits.
  std::vector<std::vector<double>> avg(seeds.size(),
                                       std::vector<double>(ks.size(), 0.0));
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    for (const auto& profile : nc::gen::iscas89_profiles()) {
      const nc::bits::TritVector td =
          nc::gen::calibrated_cubes(profile, seeds[s]).flatten();
      for (std::size_t ki = 0; ki < ks.size(); ++ki)
        avg[s][ki] += nc::codec::NineCoded(ks[ki])
                          .analyze(td)
                          .compression_ratio() /
                      static_cast<double>(nc::gen::iscas89_profiles().size());
    }
  }

  nc::report::Table out(
      "Seed stability of the Table II sweep (avg CR% over 6 circuits)");
  out.set_header({"K", "min", "mean", "max", "spread"});
  std::vector<std::size_t> peaks;
  for (std::size_t s = 0; s < seeds.size(); ++s)
    peaks.push_back(static_cast<std::size_t>(
        std::max_element(avg[s].begin(), avg[s].end()) - avg[s].begin()));
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    double lo = 1e18, hi = -1e18, mean = 0;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      lo = std::min(lo, avg[s][ki]);
      hi = std::max(hi, avg[s][ki]);
      mean += avg[s][ki] / static_cast<double>(seeds.size());
    }
    out.row()
        .add(ks[ki])
        .add(lo, 2)
        .add(mean, 2)
        .add(hi, 2)
        .add(hi - lo, 2);
  }
  out.print(std::cout);

  // The peak must land on K=8..16 for every seed.
  bool stable = true;
  for (std::size_t p : peaks)
    stable = stable && ks[p] >= 8 && ks[p] <= 16;
  std::cout << "\npeak K per seed:";
  for (std::size_t p : peaks) std::cout << ' ' << ks[p];
  std::cout << " -- stable in the paper's 8-16 window: "
            << (stable ? "yes" : "NO") << '\n';
  return stable ? 0 : 1;
}
