// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/test_set.h"
#include "gen/cube_gen.h"

namespace nc::bench {

/// The block sizes swept in Tables II/III/VII.
inline const std::vector<std::size_t>& table_k_sweep() {
  static const std::vector<std::size_t> ks = {4, 8, 12, 16, 20, 24, 28, 32};
  return ks;
}

/// One calibrated test set per ISCAS'89 profile, deterministic.
inline bits::TestSet benchmark_cubes(const gen::BenchmarkProfile& profile) {
  return gen::calibrated_cubes(profile, /*seed=*/1);
}

}  // namespace nc::bench
