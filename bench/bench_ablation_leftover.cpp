// Ablation: what the leftover don't-cares actually buy. The paper's
// functional argument for keeping X bits alive in TE is that random-filling
// them on the tester catches NON-MODELED faults. Experiment: run ATPG for
// only half the fault list (the "modeled" faults), compress the cubes at
// several K, decode, random-fill the surviving X bits, and fault-simulate
// against the OTHER half (the non-modeled stand-ins).
//
// Finding worth stating plainly: for stuck-at "cousins" the effect is
// MARGINAL -- the care bits already detect ~86% of the unmodeled half, and
// the uniform values the code itself fills (K=4, zero leftover X) do about
// as well as tester-side random fill. The claimed benefit should therefore
// be read as insurance for defect types whose detection is closer to
// random (bridging/delay), not as a stuck-at coverage lever; what K really
// trades is CR against LX (Tables II/III), with coverage roughly constant.
#include <iostream>

#include "atpg/atpg.h"
#include "circuit/generator.h"
#include "codec/nine_coded.h"
#include "power/fill.h"
#include "report/table.h"
#include "sim/fault_sim.h"

int main() {
  nc::circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 16;
  gcfg.num_flops = 48;
  gcfg.num_gates = 300;
  gcfg.seed = 3;
  const nc::circuit::Netlist nl = nc::circuit::generate_circuit(gcfg);

  // Split the collapsed list: even indices are "modeled", odd are not.
  const auto all = nc::sim::collapsed_fault_list(nl);
  std::vector<nc::sim::Fault> modeled, unmodeled;
  for (std::size_t i = 0; i < all.size(); ++i)
    (i % 2 == 0 ? modeled : unmodeled).push_back(all[i]);

  nc::atpg::AtpgConfig acfg;
  acfg.compact = false;  // keep the cubes X-rich
  const nc::atpg::AtpgResult atpg = nc::atpg::generate_tests(nl, modeled, acfg);
  const nc::bits::TritVector td = atpg.tests.flatten();
  std::cout << "modeled: " << modeled.size() << " faults -> "
            << atpg.tests.pattern_count() << " cubes, "
            << 100.0 * atpg.tests.x_fraction() << "% X; unmodeled pool: "
            << unmodeled.size() << " faults\n\n";

  nc::sim::FaultSimulator fsim(nl);
  // Baseline: filling ALL X before compression (what the paper criticizes).
  const double prefill_cov =
      fsim.run(nc::power::fill(atpg.tests, nc::power::FillStrategy::kRandom, 7),
               unmodeled)
          .coverage_percent();

  nc::report::Table out(
      "ABLATION -- leftover-X random fill vs non-modeled fault coverage");
  out.set_header({"K", "CR%", "LX%", "non-modeled coverage%"});
  for (std::size_t k : {4u, 8u, 16u, 24u, 32u}) {
    const nc::codec::NineCoded coder(k);
    const auto stats = coder.analyze(td);
    const nc::bits::TritVector decoded =
        coder.decode(coder.encode(td), td.size());
    const nc::bits::TestSet survived = nc::bits::TestSet::unflatten(
        decoded, atpg.tests.pattern_count(), atpg.tests.pattern_length());
    const nc::bits::TestSet applied =
        nc::power::fill(survived, nc::power::FillStrategy::kRandom, 7);
    out.row()
        .add(k)
        .add(stats.compression_ratio(), 2)
        .add(stats.leftover_x_percent(), 2)
        .add(fsim.run(applied, unmodeled).coverage_percent(), 2);
  }
  out.separator().row().add("prefill").add("(n/a)").add("100*").add(
      prefill_cov, 2);
  out.print(std::cout);
  std::cout << "\n(*prefill = every X random-filled before compression -- "
               "zero compression.)\nnon-modeled stuck-at coverage is nearly "
               "flat across K: the care bits do the\nwork, so K should be "
               "chosen on the CR/LX axis; leftover X is cheap insurance\n"
               "for defect types this stuck-at proxy cannot show.\n";
  return 0;
}
