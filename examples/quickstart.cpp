// Quickstart: compress a precomputed test set with the 9C code, inspect the
// statistics behind the paper's tables, and verify the round trip.
//
//   ./quickstart [K]
#include <cstdlib>
#include <iostream>

#include "codec/nine_coded.h"
#include "decomp/single_scan.h"
#include "decomp/timing.h"
#include "gen/cube_gen.h"

int main(int argc, char** argv) {
  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  // A test set in the style of the paper's benchmarks: mostly don't-cares.
  const nc::gen::BenchmarkProfile& profile = nc::gen::iscas89_profile("s5378");
  const nc::bits::TestSet cubes = nc::gen::calibrated_cubes(profile);
  const nc::bits::TritVector td = cubes.flatten();
  std::cout << "test set " << profile.name << ": " << cubes.pattern_count()
            << " patterns x " << cubes.pattern_length() << " cells = "
            << td.size() << " bits, " << 100.0 * cubes.x_fraction()
            << "% X\n\n";

  // Encode.
  const nc::codec::NineCoded coder(k);
  nc::bits::TritVector te;
  const nc::codec::NineCodedStats stats = coder.analyze(td, &te);
  std::cout << coder.name() << ": |TE| = " << stats.encoded_bits
            << " bits, CR = " << stats.compression_ratio() << "%\n";
  std::cout << "leftover don't-cares: " << stats.leftover_x << " ("
            << stats.leftover_x_percent() << "% of TD)\n";
  std::cout << "codeword counts N1..N9:";
  for (std::size_t n : stats.counts) std::cout << ' ' << n;
  std::cout << "\n\n";

  // Decode in software and through the cycle-accurate decoder model.
  const nc::bits::TritVector decoded = coder.decode(te, td.size());
  std::cout << "software decode covers every care bit: "
            << (td.covered_by(decoded) ? "yes" : "NO") << '\n';

  const unsigned p = 8;  // SoC scan clock is 8x the ATE clock
  const nc::decomp::SingleScanDecoder decoder(k, p);
  const nc::decomp::DecoderTrace trace = decoder.run(te, td.size());
  std::cout << "on-chip decoder model: " << trace.soc_cycles
            << " SoC cycles (vs " << nc::decomp::nocomp_soc_cycles(td.size(), p)
            << " uncompressed), TAT = "
            << nc::decomp::tat_percent(stats, coder.table(), p) << "%\n";
  std::cout << "hardware decode matches software decode: "
            << (trace.scan_stream == decoded ? "yes" : "NO") << '\n';
  return 0;
}
