// The trade-off the paper closes Section IV with: pick K from Table III
// for the leftover don't-cares you want, read the CR you pay from Table II.
// This tool prints both columns for any X density.
//
//   ./tradeoff_explorer [x_percent] [patterns] [width]
#include <cstdlib>
#include <iostream>

#include "codec/nine_coded.h"
#include "gen/cube_gen.h"
#include "report/table.h"

int main(int argc, char** argv) {
  const double x_percent =
      argc > 1 ? std::strtod(argv[1], nullptr) : 85.0;
  nc::gen::CubeGenConfig cfg;
  cfg.patterns = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;
  cfg.width = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 600;
  cfg.x_fraction = x_percent / 100.0;
  cfg.seed = 13;

  const nc::bits::TritVector td = nc::gen::generate_cubes(cfg).flatten();
  std::cout << "synthetic TD: " << td.size() << " bits, "
            << 100.0 * td.x_fraction() << "% X\n\n";

  nc::report::Table table("CR vs leftover-X trade-off across block sizes");
  table.set_header({"K", "CR%", "LX%", "|TE| bits", "blocks C9%"});
  for (std::size_t k : {4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u, 48u}) {
    const nc::codec::NineCoded coder(k);
    const auto stats = coder.analyze(td);
    const double c9 =
        100.0 * static_cast<double>(stats.counts[8]) /
        static_cast<double>(stats.blocks());
    table.row()
        .add(k)
        .add(stats.compression_ratio(), 2)
        .add(stats.leftover_x_percent(), 2)
        .add(stats.encoded_bits)
        .add(c9, 1);
  }
  table.print(std::cout);
  std::cout << "\nSmall K fills every X (best defect-oblivious compression); "
               "large K keeps X alive\nfor random fill or low-power fill at "
               "some CR cost. Pick the row you need.\n";
  return 0;
}
