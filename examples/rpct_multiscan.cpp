// Reduced pin-count testing: the three scan architectures of Fig. 4 side by
// side -- pins vs decoders vs test time -- on a MinTest-like test set.
//
//   ./rpct_multiscan [chains] [K] [p]
#include <cstdlib>
#include <iostream>

#include "decomp/multi_scan.h"
#include "gen/cube_gen.h"
#include "report/table.h"

int main(int argc, char** argv) {
  const std::size_t chains = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const unsigned p =
      argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10)) : 8;

  const nc::bits::TestSet td =
      nc::gen::calibrated_cubes(nc::gen::iscas89_profile("s13207"));
  const nc::codec::NineCoded coder(k);

  const auto a = nc::decomp::run_single_scan(td, coder, p);
  const auto b = nc::decomp::run_multi_scan_single_pin(td, chains, coder, p);
  const auto c = nc::decomp::run_multi_scan_banked(td, chains, coder, p);

  nc::report::Table table("Reduced pin-count testing (s13207-like set, K=" +
                          std::to_string(k) + ", p=" + std::to_string(p) +
                          ")");
  table.set_header({"architecture", "pins", "decoders", "chains",
                    "SoC cycles", "CR%"});
  for (const auto* r : {&a, &b, &c}) {
    table.row()
        .add(r->name)
        .add(r->ate_pins)
        .add(r->decoders)
        .add(r->chains)
        .add(r->soc_cycles)
        .add(r->compression_ratio, 2);
  }
  table.print(std::cout);
  std::cout << "\nFig. 4b cuts ATE pins from " << chains
            << " to 1 at unchanged test time; Fig. 4c buys a ~"
            << chains / k << "x speedup for " << c.ate_pins << " pins and "
            << c.decoders << " decoders.\n";
  return 0;
}
