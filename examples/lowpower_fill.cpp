// Leftover don't-cares as a power lever: compress with 9C, decode, and fill
// the surviving X bits with each strategy; compare scan-in weighted
// transitions (the paper's Section IV remark on power-aware X filling).
//
//   ./lowpower_fill [K]
#include <cstdlib>
#include <iostream>

#include "codec/nine_coded.h"
#include "gen/cube_gen.h"
#include "power/fill.h"
#include "power/metrics.h"
#include "report/table.h"

int main(int argc, char** argv) {
  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;

  const nc::bits::TestSet cubes =
      nc::gen::calibrated_cubes(nc::gen::iscas89_profile("s15850"));
  const nc::bits::TritVector td = cubes.flatten();

  const nc::codec::NineCoded coder(k);
  const auto stats = coder.analyze(td);
  const nc::bits::TritVector decoded = coder.decode(coder.encode(td), td.size());
  const nc::bits::TestSet survived = nc::bits::TestSet::unflatten(
      decoded, cubes.pattern_count(), cubes.pattern_length());

  std::cout << "original X: " << 100.0 * cubes.x_fraction()
            << "%  ->  leftover X after 9C(K=" << k
            << "): " << stats.leftover_x_percent() << "%\n\n";

  nc::report::Table table("Scan-in power of the leftover-X fill strategies");
  table.set_header({"fill", "weighted transitions", "vs random"});
  const std::size_t base = nc::power::total_weighted_transitions(
      nc::power::fill(survived, nc::power::FillStrategy::kRandom, 1));
  for (auto s : {nc::power::FillStrategy::kRandom, nc::power::FillStrategy::kZero,
                 nc::power::FillStrategy::kOne,
                 nc::power::FillStrategy::kMinTransition}) {
    const std::size_t wtm = nc::power::total_weighted_transitions(
        nc::power::fill(survived, s, 1));
    table.row()
        .add(nc::power::fill_strategy_name(s))
        .add(wtm)
        .add(100.0 * static_cast<double>(wtm) / static_cast<double>(base), 1);
  }
  table.print(std::cout);
  return 0;
}
