// End-to-end flow on a real netlist: ATPG generates test cubes with
// don't-cares, 9C compresses them, the on-chip decoder model reproduces the
// scan data, and fault simulation confirms the decompressed (and random-
// filled) patterns still achieve the ATPG's coverage.
//
//   ./atpg_to_ate [gates] [seed]
#include <cstdlib>
#include <iostream>

#include "atpg/atpg.h"
#include "circuit/generator.h"
#include "codec/nine_coded.h"
#include "decomp/single_scan.h"
#include "power/fill.h"
#include "sim/fault_sim.h"

int main(int argc, char** argv) {
  const std::size_t gates = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  nc::circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 16;
  gcfg.num_flops = 32;
  gcfg.num_gates = gates;
  gcfg.seed = seed;
  const nc::circuit::Netlist netlist = nc::circuit::generate_circuit(gcfg);
  std::cout << "circuit: " << netlist.inputs().size() << " PIs, "
            << netlist.flops().size() << " scan cells, "
            << netlist.logic_gate_count() << " gates\n";

  // ATPG.
  const auto faults = nc::sim::collapsed_fault_list(netlist);
  const nc::atpg::AtpgResult atpg = nc::atpg::generate_tests(netlist, faults);
  std::cout << "ATPG: " << atpg.tests.pattern_count() << " cubes, "
            << 100.0 * atpg.tests.x_fraction() << "% X, efficiency "
            << atpg.efficiency_percent() << "%\n";

  // Compress / decompress.
  const nc::bits::TritVector td = atpg.tests.flatten();
  const nc::codec::NineCoded coder(8);
  nc::bits::TritVector te;
  const auto stats = coder.analyze(td, &te);
  std::cout << coder.name() << ": CR = " << stats.compression_ratio()
            << "%, leftover X = " << stats.leftover_x_percent() << "%\n";

  const nc::decomp::SingleScanDecoder decoder(8, 8);
  const nc::decomp::DecoderTrace trace = decoder.run(te, td.size());
  const nc::bits::TestSet decoded = nc::bits::TestSet::unflatten(
      trace.scan_stream, atpg.tests.pattern_count(),
      atpg.tests.pattern_length());

  // The leftover X bits are filled randomly on the tester -- the paper's
  // suggestion for catching non-modeled defects -- then fault-simulated.
  const nc::bits::TestSet applied =
      nc::power::fill(decoded, nc::power::FillStrategy::kRandom, seed);
  nc::sim::FaultSimulator fsim(netlist);
  const auto cover = fsim.run(applied, faults);
  std::cout << "decompressed+filled patterns: stuck-at coverage "
            << cover.coverage_percent() << "% over " << faults.size()
            << " collapsed faults\n";
  return 0;
}
