// The paper's introduction, acted out: on-chip pseudo-random BIST detects
// the easy faults, a random-pattern-resistant tail remains, deterministic
// top-up cubes from ATPG cover it -- and 9C shrinks exactly that expensive
// deterministic payload the ATE must store and stream.
//
//   ./bist_topup [bist_patterns] [seed]
#include <cstdlib>
#include <iostream>

#include "atpg/atpg.h"
#include "atpg/podem.h"
#include "circuit/generator.h"
#include "codec/nine_coded.h"
#include "sim/fault_sim.h"
#include "sim/lfsr.h"

int main(int argc, char** argv) {
  const std::size_t bist_patterns =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  nc::circuit::GeneratorConfig gcfg;
  gcfg.num_inputs = 16;
  gcfg.num_flops = 40;
  gcfg.num_gates = 350;
  gcfg.seed = seed;
  const nc::circuit::Netlist nl = nc::circuit::generate_circuit(gcfg);
  const auto faults = nc::sim::collapsed_fault_list(nl);

  // Phase 1: LFSR-driven pseudo-random BIST.
  nc::sim::Lfsr lfsr = nc::sim::Lfsr::standard(24, seed | 1);
  const nc::bits::TestSet random_patterns =
      lfsr.generate_patterns(bist_patterns, nl.pattern_width());
  nc::sim::FaultSimulator fsim(nl);
  const auto bist = fsim.run(random_patterns, faults);
  std::cout << "BIST: " << bist_patterns << " LFSR patterns detect "
            << bist.detected_count() << "/" << faults.size() << " faults ("
            << bist.coverage_percent() << "%)\n";

  // Phase 2: deterministic top-up for the random-resistant tail.
  nc::atpg::Podem podem(nl);
  nc::bits::TestSet topup(0, nl.pattern_width());
  std::vector<bool> alive(faults.size());
  std::size_t resistant = 0, untestable = 0;
  for (std::size_t f = 0; f < faults.size(); ++f)
    alive[f] = !bist.detected[f];
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (!alive[f]) continue;
    ++resistant;
    const auto r = podem.generate(faults[f]);
    if (r.outcome == nc::atpg::PodemOutcome::kTestFound) {
      topup.append_pattern(r.cube);
      fsim.drop_detected(r.cube, faults, alive);
    } else {
      alive[f] = false;
      if (r.outcome == nc::atpg::PodemOutcome::kUntestable) ++untestable;
    }
  }
  std::cout << "top-up: " << resistant << " random-resistant faults -> "
            << topup.pattern_count() << " deterministic cubes ("
            << 100.0 * topup.x_fraction() << "% X, " << untestable
            << " proven untestable)\n";

  // Phase 3: the ATE stores only the 9C-compressed top-up set.
  if (topup.pattern_count() > 0) {
    const nc::bits::TritVector td = topup.flatten();
    const auto stats = nc::codec::NineCoded(8).analyze(td);
    std::cout << "9C(K=8) on the top-up set: " << td.size() << " -> "
              << stats.encoded_bits << " bits (CR "
              << stats.compression_ratio() << "%)\n"
              << "ATE storage: " << bist_patterns * nl.pattern_width()
              << " bits of random patterns stay on chip in the LFSR; only "
              << stats.encoded_bits << " compressed bits travel.\n";
  }
  return 0;
}
