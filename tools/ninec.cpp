// ninec -- command-line driver for the 9C tool chain.
//
//   ninec gen       --profile s5378 --out td.tests [--seed N]
//   ninec circuit   --gates 500 --inputs 16 --flops 32 --out c.bench [--seed N]
//   ninec atpg      --bench c.bench --out td.tests [--no-compact]
//   ninec roundtrip --bench c.bench [--tests td.tests] [--xcode steiner]
//                   [--compact-outputs M] [--x-density R] [--json FILE]
//   ninec compress  --in td.tests --out te.9c [--k 8] [--freq-directed]
//                   [--shards N] [--jobs N]
//   ninec decompress --in te.9c --out back.tests [--jobs N]
//   ninec stats     --in td.tests [--k-min 4] [--k-max 32]
//   ninec fleet     --bench c.bench --tests td.tests --devices N
//                   [--inject SPECS] [--checkpoint FILE] [--resume] ...
//   ninec serve     --socket /tmp/nc9.sock [--workers N] [--duration-ms N]
//   ninec loadgen   --socket /tmp/nc9.sock [--clients N] [--inject SPEC]
//
// Test sets travel as text (one pattern per line, 0/1/X; '#' comments) when
// the file ends in .tests/.txt and as the packed binary format of
// bits/serialize.h otherwise. Compressed streams (.9c) embed K, the
// codeword lengths and the original geometry, so decompress needs no flags.
// With --shards/--jobs, compress writes the sharded container of
// codec/sharded.h (magic NC9S on disk): pattern-aligned shards encoded
// concurrently behind a per-shard offset/length/CRC index, which decompress
// decodes with --jobs workers. --jobs 0 means one per hardware thread.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atpg/atpg.h"
#include "bits/serialize.h"
#include "decomp/ate_session.h"
#include "decomp/fleet.h"
#include "circuit/bench_io.h"
#include "circuit/generator.h"
#include "codec/nine_coded.h"
#include "codec/sharded.h"
#include "compact/roundtrip.h"
#include "compact/xcode.h"
#include "core/thread_pool.h"
#include "gen/cube_gen.h"
#include "report/json.h"
#include "report/table.h"
#include "rtl/verilog.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "store/sharded_store.h"
#include "store/store.h"
#include "tune/genome.h"
#include "tune/optimizer.h"

namespace {

using nc::bits::TestSet;
using nc::bits::TritVector;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: ninec <command> [options]\n"
      "  gen        --profile <s5378|...|CKT1|CKT2> --out FILE [--seed N]\n"
      "  circuit    --out FILE [--gates N] [--inputs N] [--flops N] [--seed N]\n"
      "  atpg       --bench FILE --out FILE [--no-compact]\n"
      "  compress   --in FILE --out FILE [--k N] [--freq-directed]\n"
      "             [--table tuned.json]  (encode with a tuned genome from\n"
      "             ninec tune --out; excludes --k/--freq-directed/--shards)\n"
      "             [--shards N] [--jobs N]  (sharded container, parallel\n"
      "             encode; --jobs 0 = one per hardware thread)\n"
      "  decompress --in FILE --out FILE [--jobs N]\n"
      "  stats      --in FILE [--k-min N] [--k-max N]\n"
      "  tune       --in FILE [--seed N] [--generations N] [--population N]\n"
      "             [--weights CR:TAT:GATES] [--p N] [--jobs N]\n"
      "             [--k-min N] [--k-max N] [--no-split] [--no-fill]\n"
      "             [--out tuned.json] [--json FILE]\n"
      "             [--socket PATH [--repeat N]]\n"
      "             (evolutionary search over coding parameters -- codeword\n"
      "             lengths, K, half split, X-fill -- scored by real encoder\n"
      "             CR, TAT cycle accounting and synthesized decoder gates;\n"
      "             seeded and jobs-invariant: the same --seed is\n"
      "             bit-reproducible. --weights prices the axes (default\n"
      "             1:0.25:0.05), --out writes the winning genome for\n"
      "             compress --table, --json the per-generation trace.\n"
      "             With --socket the search runs on a ninec serve instance\n"
      "             as a content-addressed artifact: --repeat resends the\n"
      "             identical request to demonstrate cache/store hits)\n"
      "  rtl        --out FILE [--k N] [--freq-directed --in FILE]\n"
      "             [--testbench FILE] [--module NAME]\n"
      "  roundtrip  --bench FILE [--tests FILE] [--k N] [--seed N]\n"
      "             [--xcode identity|steiner|greedy] [--compact-outputs M]\n"
      "             [--x-density R] [--jobs N] [--json FILE]\n"
      "             (closed tester loop: TD -> 9C encode -> decode -> scan\n"
      "             sim -> X-code response compaction -> per-fault verdicts;\n"
      "             without --tests the cubes come from ATPG. --xcode picks\n"
      "             the parity matrix (default steiner, t = 2),\n"
      "             --compact-outputs fixes m (default: smallest feasible),\n"
      "             --x-density R in [0,1] overlays environment unknowns on\n"
      "             the responses. Exit 0 iff compaction loses no coverage\n"
      "             and the code's tolerance self-check holds)\n"
      "  session    --bench FILE --tests FILE [--k N] [--p N]\n"
      "             [--jobs N] [--shards N]  (pipelined decode/compare)\n"
      "             [--inject SPEC] [--retry N] [--abort-after N]\n"
      "             SPEC: flip=R,burst=R[:LEN],trunc=R,stuck=R,seed=N\n"
      "             (faulty ATE channel; detected corruptions re-stream the\n"
      "             pattern up to --retry times, default 3)\n"
      "  fleet      --bench FILE --tests FILE --devices N [--inject SPECS]\n"
      "             [--checkpoint FILE] [--resume] [--watchdog-steps N]\n"
      "             [--breaker-threshold N] [--breaker-probe N] [--batch N]\n"
      "             [--jobs N] [--retry N] [--seed N] [--k N] [--p N]\n"
      "             (N devices through per-device faulty channels with\n"
      "             retry, watchdog, circuit breaker and an NC9J checkpoint\n"
      "             journal; SPECS may be ';'-separated, assigned to\n"
      "             devices round-robin)\n"
      "  serve      --socket PATH [--workers N] [--queue N] [--inflight N]\n"
      "             [--cache-bytes N] [--duration-ms N] [--store DIR]\n"
      "             [--store-shards N] [--store-parity N]\n"
      "             [--store-stripe-bytes N] [--store-scrub-ms N]\n"
      "             [--request-deadline-ms N] [--write-deadline-ms N]\n"
      "             [--min-progress-bps N] [--idle-timeout-ms N]\n"
      "             (frame-protocol compression service on a Unix socket;\n"
      "             runs until --duration-ms elapses, default forever;\n"
      "             --request-deadline-ms is the default budget for\n"
      "             requests that carry none (expired work is shed with a\n"
      "             typed reply); --write-deadline-ms bounds each reply\n"
      "             write, --min-progress-bps/--idle-timeout-ms disconnect\n"
      "             dribbling/idle peers -- the slow-client defense;\n"
      "             --store adds a persistent artifact tier: cache misses\n"
      "             check DIR before computing, results are written through,\n"
      "             and a restart on the same DIR answers warm;\n"
      "             --store-shards >= 2 makes DIR an erasure-coded multi-\n"
      "             shard tier that survives --store-parity shard losses,\n"
      "             striping payloads >= --store-stripe-bytes and scrubbing\n"
      "             every --store-scrub-ms when > 0)\n"
      "  store      <fsck|stats|compact|scrub> --dir DIR\n"
      "             A DIR holding a sharded.nc9x marker is opened as the\n"
      "             erasure-coded multi-shard tier (fsck/stats/compact\n"
      "             iterate its shards); otherwise as a single store.\n"
      "             fsck: full segment scan cross-checked against the\n"
      "             manifest; repairs by default (recover orphans, drop\n"
      "             dangling entries, remove stray segments) unless\n"
      "             --scan-only; exit 0 iff the store is clean\n"
      "             stats: print store statistics as JSON\n"
      "             compact: rewrite live records out of garbage segments\n"
      "             [--min-garbage R, default 0 = any garbage]\n"
      "             scrub (sharded only): verify every stripe/replica,\n"
      "             rewrite missing strips onto healthy shards; exit 0 iff\n"
      "             full redundancy holds afterwards\n"
      "  loadgen    --socket PATH [--clients N] [--requests N] [--pipeline N]\n"
      "             [--distinct N] [--patterns N] [--width N] [--seed N]\n"
      "             [--fault-period N] [--inject SPEC] [--deadline-ms N]\n"
      "             [--request-deadline-ms N] [--hedge-after-ms N]\n"
      "             [--retry-budget N] [--chaos RULES] [--json FILE]\n"
      "             [--signatures N] [--signature-x R]\n"
      "             (N concurrent clients replay a deterministic workload;\n"
      "             every reply is checked byte-identical to a serial\n"
      "             reference; exit 0 only if nothing was lost, duplicated\n"
      "             or corrupted. --request-deadline-ms stamps an\n"
      "             end-to-end deadline into each request; --hedge-after-ms\n"
      "             races a duplicate transmit against a quiet reply;\n"
      "             --retry-budget caps total retransmits per client;\n"
      "             --chaos wraps each connection in a deterministic fault\n"
      "             schedule, e.g. 'write:dribble@4x64,read:stall=40@9,\n"
      "             any:reset@199' -- op:action[=param][@skip[xcount]],\n"
      "             op read|write|any, action latency|stall|dribble|\n"
      "             partial|reset, count '*' = forever;\n"
      "             --signatures N adds a serial publish of a scan circuit's\n"
      "             expected X-compacted response stream plus N signature-\n"
      "             check requests (fault-free and faulty devices) whose\n"
      "             replies must match the local analyzer byte for byte;\n"
      "             --signature-x sets the response X-overlay density)\n"
      "count options (--devices, --shards, --jobs, --batch, --k, --p, ...)\n"
      "take a positive integer; --shards/--jobs also accept 'auto' (one\n"
      "shard/worker per hardware thread). Malformed values exit with code 2.\n"
      "compress/decompress/stats/session/fleet/serve also take\n"
      "  --codec-impl auto|scalar|bitplane   9C hot-path implementation\n"
      "(auto = word-parallel bitplane; scalar is the per-trit reference;\n"
      "both produce byte-identical streams -- see DESIGN.md section 13).\n";
  std::exit(error.empty() ? 0 : 2);
}

/// Strict non-negative integer: the whole text must be digits and fit in
/// size_t. Anything else -- sign, trailing junk, empty, overflow -- is a
/// usage error (exit 2), never a silent 0 or a stoul crash.
std::size_t parse_size(const std::string& key, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos)
    usage("--" + key + " expects a non-negative integer, got '" + text + "'");
  try {
    const unsigned long long v = std::stoull(text);
    if (v > std::numeric_limits<std::size_t>::max())
      throw std::out_of_range(text);
    return static_cast<std::size_t>(v);
  } catch (const std::out_of_range&) {
    usage("--" + key + " value '" + text + "' is out of range");
  }
}

/// Strict ratio: a decimal in [0,1], fully consumed. Sign, trailing junk,
/// nan/inf, out-of-range -- usage error (exit 2), same contract as
/// parse_size.
double parse_ratio(const std::string& key, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size() || !(v >= 0.0 && v <= 1.0))
      throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage("--" + key + " expects a ratio in [0,1], got '" + text + "'");
  }
}

/// Tiny flag parser: --name value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument: " + key);
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
        values_[key] = argv[++i];
      else
        values_[key] = "";
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string require(const std::string& key) const {
    if (!has(key) || values_.at(key).empty()) usage("missing --" + key);
    return values_.at(key);
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    return has(key) ? parse_size(key, values_.at(key)) : fallback;
  }
  double get_ratio(const std::string& key, double fallback) const {
    return has(key) ? parse_ratio(key, values_.at(key)) : fallback;
  }

  /// Count flag: a positive integer. When `auto_value` is set, the literal
  /// "auto" is also accepted and maps to it (the library's 0-means-auto
  /// convention, which the CLI spells out instead of accepting a bare 0).
  std::size_t get_count(const std::string& key, std::size_t fallback,
                        std::optional<std::size_t> auto_value = {}) const {
    if (!has(key)) return fallback;
    const std::string& text = values_.at(key);
    if (auto_value.has_value() && text == "auto") return *auto_value;
    const std::size_t v = parse_size(key, text);
    if (v == 0)
      usage("--" + key + " must be >= 1" +
            std::string(auto_value.has_value() ? " (or 'auto')" : ""));
    return v;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// --codec-impl auto|scalar|bitplane (default auto). Anything else exits 2.
nc::codec::CodecImpl parse_codec_impl(const Args& args) {
  const std::string text = args.get("codec-impl", "auto");
  const auto impl = nc::codec::codec_impl_from_string(text);
  if (!impl.has_value())
    usage("--codec-impl expects auto, scalar or bitplane, got '" + text +
          "'");
  return *impl;
}

bool is_text_path(const std::string& path) {
  return path.ends_with(".tests") || path.ends_with(".txt");
}

TestSet load_tests(const std::string& path) {
  return is_text_path(path) ? TestSet::load_file(path)
                            : nc::bits::load_test_set_file(path);
}

void save_tests(const std::string& path, const TestSet& ts) {
  if (is_text_path(path))
    ts.save_file(path);
  else
    nc::bits::save_test_set_file(path, ts);
}

// ---------------------------------------------------------------- .9c I/O
// magic "NC9C" | u8 k | 9 x u8 codeword lengths | u64 patterns | u64 width |
// serialized TE trits.
//
// Sharded files share the same layout under magic "NC9S"; their trit payload
// is the self-describing container of codec/sharded.h (pattern-aligned
// shards behind an offset/length/CRC index).
//
// Tuned streams (compress --table with a genome outside the paper's default
// shape) use the extended header "NC9T": magic | u8 k | u8 split | u8 fill |
// u64 fill_seed | 9 x u8 lengths | u64 patterns | u64 width | trits. The
// split reaches the decoder (asymmetric halves change the stream layout);
// fill/fill_seed are provenance only -- the encoded payload is the filled
// TD, so decoding needs neither.

void save_stream(const std::string& path, const nc::codec::NineCoded& coder,
                 const TestSet& td, const TritVector& te,
                 bool sharded = false,
                 const nc::tune::TuneGenome* genome = nullptr) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  const bool tuned = genome != nullptr && !genome->is_standard_shape();
  out.write(tuned ? "NC9T" : (sharded ? "NC9S" : "NC9C"), 4);
  out.put(static_cast<char>(coder.block_size()));
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.put(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  if (tuned) {
    out.put(static_cast<char>(genome->split));
    out.put(static_cast<char>(genome->fill));
    put_u64(genome->fill_seed);
  }
  for (std::size_t c = 0; c < nc::codec::kNumClasses; ++c)
    out.put(static_cast<char>(
        coder.table().length(static_cast<nc::codec::BlockClass>(c))));
  put_u64(td.pattern_count());
  put_u64(td.pattern_length());
  nc::bits::save_trits(out, te);
  if (!out) throw std::runtime_error("write failed: " + path);
}

struct LoadedStream {
  nc::codec::NineCoded coder;
  std::size_t patterns;
  std::size_t width;
  TritVector te;
  bool sharded = false;
};

LoadedStream load_stream(const std::string& path,
                         nc::codec::CodecImpl impl = nc::codec::CodecImpl::kAuto) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  const bool sharded = in && std::strncmp(magic, "NC9S", 4) == 0;
  const bool tuned = in && std::strncmp(magic, "NC9T", 4) == 0;
  if (!in || (!sharded && !tuned && std::strncmp(magic, "NC9C", 4) != 0))
    throw std::runtime_error(path + " is not a ninec stream");
  const std::size_t k = static_cast<unsigned char>(in.get());
  auto get_u64 = [&] {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in.get()))
           << (8 * i);
    return v;
  };
  std::size_t split = 0;
  if (tuned) {
    split = static_cast<unsigned char>(in.get());
    in.get();   // fill policy: provenance only, the payload is already filled
    get_u64();  // fill seed, likewise
  }
  std::array<unsigned, nc::codec::kNumClasses> lengths{};
  for (auto& len : lengths) len = static_cast<unsigned char>(in.get());
  const std::size_t patterns = static_cast<std::size_t>(get_u64());
  const std::size_t width = static_cast<std::size_t>(get_u64());
  if (!in) throw std::runtime_error(path + " is truncated");
  TritVector te = nc::bits::load_trits(in);
  return LoadedStream{
      nc::codec::NineCoded(k, nc::codec::CodewordTable::from_lengths(lengths),
                           impl, split),
      patterns, width, std::move(te), sharded};
}

// ---------------------------------------------------------------- commands

int cmd_gen(const Args& args) {
  const std::string name = args.require("profile");
  const nc::gen::BenchmarkProfile* profile = nullptr;
  for (const auto& p : nc::gen::iscas89_profiles())
    if (p.name == name) profile = &p;
  for (const auto& p : nc::gen::ibm_profiles())
    if (p.name == name) profile = &p;
  if (profile == nullptr) usage("unknown profile " + name);
  const TestSet ts =
      nc::gen::calibrated_cubes(*profile, args.get_size("seed", 1));
  save_tests(args.require("out"), ts);
  std::cout << profile->name << ": " << ts.pattern_count() << " x "
            << ts.pattern_length() << " cubes, "
            << 100.0 * ts.x_fraction() << "% X -> " << args.get("out")
            << '\n';
  return 0;
}

int cmd_circuit(const Args& args) {
  nc::circuit::GeneratorConfig cfg;
  cfg.num_gates = args.get_size("gates", 500);
  cfg.num_inputs = args.get_size("inputs", 16);
  cfg.num_flops = args.get_size("flops", 32);
  cfg.num_outputs = args.get_size("outputs", 8);
  cfg.seed = args.get_size("seed", 1);
  const nc::circuit::Netlist nl = nc::circuit::generate_circuit(cfg);
  std::ofstream out(args.require("out"));
  if (!out) throw std::runtime_error("cannot write " + args.get("out"));
  nc::circuit::write_bench(out, nl);
  std::cout << "wrote " << nl.logic_gate_count() << "-gate netlist ("
            << nl.inputs().size() << " PIs, " << nl.flops().size()
            << " flops) -> " << args.get("out") << '\n';
  return 0;
}

int cmd_atpg(const Args& args) {
  const nc::circuit::Netlist nl =
      nc::circuit::load_bench_file(args.require("bench"));
  nc::atpg::AtpgConfig cfg;
  cfg.compact = !args.has("no-compact");
  const nc::atpg::AtpgResult result = nc::atpg::generate_tests(nl, cfg);
  save_tests(args.require("out"), result.tests);
  std::cout << "ATPG: " << result.tests.pattern_count() << " cubes, "
            << 100.0 * result.tests.x_fraction() << "% X, efficiency "
            << result.efficiency_percent() << "% ("
            << result.detected << " detected, " << result.untestable
            << " untestable, " << result.aborted << " aborted)\n";
  return 0;
}

/// --xcode identity|steiner|greedy (default steiner). Anything else exits 2.
nc::compact::XCodeKind parse_xcode_kind(const Args& args) {
  const std::string text = args.get("xcode", "steiner");
  if (text == "identity") return nc::compact::XCodeKind::kIdentity;
  if (text == "steiner") return nc::compact::XCodeKind::kSteiner;
  if (text == "greedy") return nc::compact::XCodeKind::kGreedy;
  usage("--xcode expects identity, steiner or greedy, got '" + text + "'");
}

int cmd_roundtrip(const Args& args) {
  const nc::circuit::Netlist nl =
      nc::circuit::load_bench_file(args.require("bench"));

  TestSet td;
  if (args.has("tests")) {
    td = load_tests(args.require("tests"));
  } else {
    nc::atpg::AtpgConfig acfg;
    acfg.compact = !args.has("no-compact");
    td = nc::atpg::generate_tests(nl, acfg).tests;
  }

  nc::compact::RoundtripConfig cfg;
  cfg.block_size = args.get_count("k", cfg.block_size);
  cfg.codec_impl = parse_codec_impl(args);
  cfg.xcode.kind = parse_xcode_kind(args);
  // get_count rejects 0: m = 0 (auto) is spelled by omitting the flag.
  cfg.xcode.outputs = args.get_count("compact-outputs", 0);
  cfg.xcode.seed = args.get_size("seed", cfg.xcode.seed);
  cfg.analyzer.x_density = args.get_ratio("x-density", 0.0);
  cfg.analyzer.x_seed = cfg.xcode.seed;
  cfg.analyzer.jobs = args.get_count("jobs", 1, std::size_t{0});

  const std::vector<nc::sim::Fault> faults = nc::sim::full_fault_list(nl);
  const nc::compact::RoundtripResult r =
      nc::compact::run_roundtrip(nl, td, faults, cfg);
  const nc::compact::AnalyzerReport& rep = r.report;

  std::cout << "stimulus: " << r.patterns << " patterns x "
            << r.pattern_width << " bits, " << r.td_bits << " -> "
            << r.te_bits << " TE bits (CR " << r.compression_percent
            << "%)\n"
            << "response: " << nc::compact::to_string(r.xcode_kind)
            << " X-code " << rep.compact_outputs << " x "
            << rep.response_width << " (t = " << rep.tolerance
            << "), compaction " << rep.compaction_ratio() << "x\n"
            << "unknowns: " << rep.total_x << " X total, max "
            << rep.max_cycle_x << " per cycle, "
            << rep.cycles_over_tolerance << " cycles over tolerance\n"
            << "coverage: " << rep.coverage_uncompacted_percent()
            << "% uncompacted, " << rep.coverage_compacted_percent()
            << "% compacted (" << rep.masked_by_compaction << " masked, "
            << rep.coverage_loss_percent() << "% loss)\n";
  if (rep.misr_enabled)
    std::cout << "misr: " << rep.misr_coverage_percent() << "% coverage, "
              << rep.misr_no_verdict << " faults with no verdict"
              << (rep.misr_good_poisoned ? " (reference signature poisoned)"
                                         : "")
              << '\n';
  if (rep.tolerance_violations > 0)
    std::cout << "TOLERANCE VIOLATIONS: " << rep.tolerance_violations
              << " masked faults inside the code's claimed t\n";

  if (args.has("json")) {
    nc::report::Json doc = nc::report::Json::object();
    doc["patterns"] = r.patterns;
    doc["pattern_width"] = r.pattern_width;
    doc["td_bits"] = r.td_bits;
    doc["te_bits"] = r.te_bits;
    doc["compression_percent"] = r.compression_percent;
    doc["xcode"] = std::string(nc::compact::to_string(r.xcode_kind));
    doc["response_width"] = rep.response_width;
    doc["compact_outputs"] = rep.compact_outputs;
    doc["tolerance"] = std::uint64_t{rep.tolerance};
    doc["compaction_ratio"] = rep.compaction_ratio();
    doc["faults"] = rep.faults;
    doc["detected_uncompacted"] = rep.detected_uncompacted;
    doc["detected_compacted"] = rep.detected_compacted;
    doc["masked_by_compaction"] = rep.masked_by_compaction;
    doc["tolerance_violations"] = rep.tolerance_violations;
    doc["coverage_uncompacted_percent"] = rep.coverage_uncompacted_percent();
    doc["coverage_compacted_percent"] = rep.coverage_compacted_percent();
    doc["coverage_loss_percent"] = rep.coverage_loss_percent();
    doc["total_x"] = rep.total_x;
    doc["max_cycle_x"] = rep.max_cycle_x;
    doc["cycles_over_tolerance"] = rep.cycles_over_tolerance;
    doc["misr_enabled"] = rep.misr_enabled;
    doc["misr_coverage_percent"] = rep.misr_coverage_percent();
    doc["misr_no_verdict"] = rep.misr_no_verdict;
    doc["misr_good_poisoned"] = rep.misr_good_poisoned;
    nc::report::write_json_file(args.require("json"), doc);
  }
  return rep.masked_by_compaction == 0 && rep.tolerance_violations == 0 ? 0
                                                                        : 1;
}

/// Reads a whole file into a string (genome JSON tables are tiny).
std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

int cmd_compress(const Args& args) {
  const TestSet td = load_tests(args.require("in"));
  const nc::codec::CodecImpl impl = parse_codec_impl(args);
  if (args.has("table")) {
    // A tuned genome pins K, the lengths, the split and the fill policy;
    // combining it with the knobs it replaces is a contradiction, and the
    // sharded container does not carry the extended header.
    if (args.has("k") || args.has("freq-directed") || args.has("shards") ||
        args.has("jobs"))
      usage("--table excludes --k/--freq-directed/--shards/--jobs");
    const nc::tune::TuneGenome genome =
        nc::tune::TuneGenome::from_json(slurp_file(args.require("table")));
    const TestSet filled = genome.apply_fill(td);
    const nc::codec::NineCoded coder = genome.make_coder(impl);
    TritVector te;
    const auto stats = coder.analyze(filled.flatten(), &te);
    save_stream(args.require("out"), coder, filled, te, /*sharded=*/false,
                &genome);
    std::cout << coder.name() << " (tuned, fill "
              << nc::tune::fill_policy_name(genome.fill) << "): "
              << stats.original_bits << " -> " << stats.encoded_bits
              << " bits, CR " << stats.compression_ratio()
              << "%, leftover X " << stats.leftover_x_percent() << "%\n";
    return 0;
  }
  const std::size_t k = args.get_count("k", 8);
  const TritVector stream = td.flatten();
  const nc::codec::NineCoded coder =
      args.has("freq-directed")
          ? nc::codec::NineCoded::tuned_for(stream, k, impl)
          : nc::codec::NineCoded(k, impl);
  if (args.has("shards") || args.has("jobs")) {
    // Sharded container: --shards 0 (or absent) means one shard per job.
    nc::codec::ShardedStats sstats;
    const TritVector container = nc::codec::encode_sharded(
        coder, td, args.get_count("shards", 0, std::size_t{0}),
        args.get_count("jobs", 1, std::size_t{0}), &sstats);
    save_stream(args.require("out"), coder, td, container, /*sharded=*/true);
    std::cout << coder.name() << ": " << td.bit_count() << " -> "
              << sstats.total_bits << " bits in " << sstats.shard_count
              << " shards, CR "
              << nc::codec::compression_ratio_percent(td.bit_count(),
                                                      sstats.total_bits)
              << "%, shard index " << sstats.index_overhead_percent()
              << "% of container\n";
    return 0;
  }
  TritVector te;
  const auto stats = coder.analyze(stream, &te);
  save_stream(args.require("out"), coder, td, te);
  std::cout << coder.name() << ": " << stats.original_bits << " -> "
            << stats.encoded_bits << " bits, CR "
            << stats.compression_ratio() << "%, leftover X "
            << stats.leftover_x_percent() << "%\n";
  return 0;
}

int cmd_decompress(const Args& args) {
  // Validate up front: a bad --jobs must exit 2 even when the input turns
  // out to be a plain (unsharded) stream that decodes serially.
  const std::size_t jobs = args.get_count("jobs", 1, std::size_t{0});
  const LoadedStream s =
      load_stream(args.require("in"), parse_codec_impl(args));
  if (s.sharded) {
    const TestSet back = nc::codec::decode_sharded(s.coder, s.te, jobs);
    save_tests(args.require("out"), back);
    std::cout << "decoded " << back.pattern_count() << " x "
              << back.pattern_length() << " patterns (sharded) -> "
              << args.get("out") << '\n';
    return 0;
  }
  const TritVector decoded = s.coder.decode(s.te, s.patterns * s.width);
  save_tests(args.require("out"),
             TestSet::unflatten(decoded, s.patterns, s.width));
  std::cout << "decoded " << s.patterns << " x " << s.width
            << " patterns -> " << args.get("out") << '\n';
  return 0;
}

int cmd_stats(const Args& args) {
  const TestSet td = load_tests(args.require("in"));
  const TritVector stream = td.flatten();
  const std::size_t k_min = args.get_count("k-min", 4);
  const std::size_t k_max = args.get_count("k-max", 32);
  const nc::codec::CodecImpl impl = parse_codec_impl(args);
  nc::report::Table table("9C sweep of " + args.get("in") + " (" +
                          std::to_string(stream.size()) + " bits, " +
                          std::to_string(100.0 * stream.x_fraction()) +
                          "% X)");
  table.set_header({"K", "CR%", "LX%", "|TE|"});
  for (std::size_t k = k_min; k <= k_max; k += 4) {
    if (k % 2 != 0) continue;
    const auto stats = nc::codec::NineCoded(k, impl).analyze(stream);
    table.row()
        .add(k)
        .add(stats.compression_ratio(), 2)
        .add(stats.leftover_x_percent(), 2)
        .add(stats.encoded_bits);
  }
  table.print(std::cout);
  return 0;
}

/// --weights CR:TAT:GATES plus --p; defaults are TuneWeights' own. Each
/// field must be a finite non-negative decimal; anything else exits 2.
nc::tune::TuneWeights parse_weights(const Args& args) {
  nc::tune::TuneWeights w;
  w.p = static_cast<unsigned>(args.get_count("p", w.p));
  if (!args.has("weights")) return w;
  const std::string text = args.require("weights");
  std::array<double, 3> v{};
  std::size_t start = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t colon = i == 2 ? text.size() : text.find(':', start);
    const std::string part =
        text.substr(start, (colon == std::string::npos ? text.size() : colon) -
                               start);
    try {
      if (colon == std::string::npos) throw std::invalid_argument(part);
      std::size_t pos = 0;
      v[i] = std::stod(part, &pos);
      if (pos != part.size() || !(v[i] >= 0.0) || v[i] - v[i] != 0.0)
        throw std::invalid_argument(part);
    } catch (const std::exception&) {
      usage("--weights expects three finite non-negative numbers "
            "CR:TAT:GATES, got '" + text + "'");
    }
    start = colon + 1;
  }
  w.cr = v[0];
  w.tat = v[1];
  w.gates = v[2];
  return w;
}

std::string genome_summary(const nc::tune::TuneGenome& g) {
  std::string s = "K=" + std::to_string(g.k) +
                  " split=" + std::to_string(g.resolved_split()) + "/" +
                  std::to_string(g.k - g.resolved_split()) + " lengths=";
  for (std::size_t i = 0; i < g.lengths.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(g.lengths[i]);
  }
  s += std::string(" fill=") + nc::tune::fill_policy_name(g.fill);
  if (g.fill == nc::tune::FillPolicy::kRandom)
    s += "(seed " + std::to_string(g.fill_seed) + ")";
  return s;
}

nc::report::Json genome_json(const nc::tune::TuneGenome& g) {
  nc::report::Json j = nc::report::Json::object();
  j["k"] = std::uint64_t{g.k};
  j["split"] = std::uint64_t{g.split};
  nc::report::Json lens = nc::report::Json::array();
  for (const unsigned len : g.lengths)
    lens.push_back(nc::report::Json(std::uint64_t{len}));
  j["lengths"] = std::move(lens);
  j["fill"] = std::string(nc::tune::fill_policy_name(g.fill));
  j["fill_seed"] = g.fill_seed;
  return j;
}

nc::report::Json fitness_json(const nc::tune::FitnessReport& r) {
  nc::report::Json j = nc::report::Json::object();
  j["valid"] = r.valid;
  // An invalid report's score is -infinity, which JSON cannot carry.
  j["score"] = r.valid ? r.score : 0.0;
  j["cr_percent"] = r.cr_percent;
  j["tat_percent"] = r.tat_percent;
  j["fsm_gates"] = std::uint64_t{r.fsm_gates};
  j["datapath_gates"] = std::uint64_t{r.datapath_gates};
  j["encoded_bits"] = std::uint64_t{r.encoded_bits};
  return j;
}

void print_fitness(const std::string& label, const nc::tune::TuneGenome& g,
                   const nc::tune::FitnessReport& r) {
  std::cout << label << ": score " << r.score << " (CR " << r.cr_percent
            << "%, TAT " << r.tat_percent << "%, FSM " << r.fsm_gates
            << " GE, datapath " << r.datapath_gates << " GE)\n  "
            << genome_summary(g) << '\n';
}

/// Remote mode: the search runs on a ninec serve instance and comes back as
/// a content-addressed artifact. --repeat resends the byte-identical
/// request; every reply must match the first byte for byte (the server
/// either computed once or answered from a tier).
int cmd_tune_remote(const Args& args) {
  const std::string socket = args.require("socket");
  nc::serve::TuneRequest req;
  req.seed = args.get_size("seed", 1);
  req.generations =
      static_cast<std::uint32_t>(args.get_count("generations", 10));
  req.population =
      static_cast<std::uint32_t>(args.get_count("population", 24));
  const nc::tune::TuneWeights w = parse_weights(args);
  req.weight_cr = w.cr;
  req.weight_tat = w.tat;
  req.weight_gates = w.gates;
  req.p = w.p;
  req.tests = load_tests(args.require("in"));
  const std::vector<std::uint8_t> payload = nc::serve::to_payload(req);

  nc::serve::RetryingClient client(
      [socket] { return nc::serve::connect_unix(socket); });
  const std::size_t repeat = args.get_count("repeat", 1);
  const auto overall =
      std::chrono::milliseconds(args.get_size("deadline-ms", 300000));
  std::vector<std::uint8_t> first_reply;
  for (std::size_t i = 0; i < repeat; ++i) {
    const auto outcome = client.call(nc::serve::FrameType::kTuneRequest,
                                     payload, overall);
    using Status = nc::serve::RetryingClient::Outcome::Status;
    if (!outcome.has_value()) {
      std::cerr << "error: tune request " << i + 1 << " timed out\n";
      return 1;
    }
    if (outcome->status != Status::kReply) {
      std::cerr << "error: tune request " << i + 1 << " failed: "
                << (outcome->status == Status::kTypedError
                        ? nc::serve::to_string(outcome->error) +
                              (": " + outcome->detail)
                        : std::string("retries exhausted"))
                << '\n';
      return 1;
    }
    const nc::serve::TuneReplyData reply =
        nc::serve::parse_tune_reply(outcome->reply.payload);
    if (i == 0) {
      first_reply = outcome->reply.payload;
      std::cout << "winner: score " << reply.score << " (CR "
                << reply.cr_percent << "%, TAT " << reply.tat_percent
                << "%, FSM " << reply.fsm_gates << " GE) after "
                << reply.evaluations << " evaluations\n  "
                << genome_summary(reply.genome) << '\n';
      if (args.has("out")) {
        std::ofstream out(args.require("out"));
        if (!out) throw std::runtime_error("cannot write " + args.get("out"));
        out << reply.genome.to_json();
      }
    } else if (outcome->reply.payload != first_reply) {
      std::cerr << "error: repeat " << i + 1
                << " returned a different artifact\n";
      return 1;
    }
  }
  if (repeat > 1)
    std::cout << repeat << " identical requests, " << repeat
              << " byte-identical replies\n";
  const auto stats = client.call(nc::serve::FrameType::kStatsRequest, {},
                                 std::chrono::milliseconds(10000));
  if (stats.has_value() &&
      stats->status == nc::serve::RetryingClient::Outcome::Status::kReply)
    std::cout << std::string(stats->reply.payload.begin(),
                             stats->reply.payload.end())
              << '\n';
  return 0;
}

int cmd_tune(const Args& args) {
  if (args.has("socket")) return cmd_tune_remote(args);
  const TestSet td = load_tests(args.require("in"));
  nc::tune::TuneConfig cfg;
  cfg.seed = args.get_size("seed", cfg.seed);
  cfg.generations = args.get_count("generations", cfg.generations);
  cfg.population = args.get_count("population", cfg.population);
  cfg.jobs = args.get_count("jobs", 1,
                            nc::core::ThreadPool::hardware_threads());
  cfg.weights = parse_weights(args);
  cfg.impl = parse_codec_impl(args);
  cfg.k_min = args.get_count("k-min", cfg.k_min);
  cfg.k_max = args.get_count("k-max", cfg.k_max);
  cfg.baseline_k = args.get_count("baseline-k", cfg.baseline_k);
  cfg.tune_split = !args.has("no-split");
  cfg.tune_fill = !args.has("no-fill");

  const nc::tune::TuneResult r = nc::tune::run_tune(td, cfg);

  std::cout << "tune: " << td.pattern_count() << " x "
            << td.pattern_length() << " cubes, " << cfg.generations
            << " generations x " << cfg.population << " candidates, seed "
            << cfg.seed << " (" << r.evaluations << " evaluations, "
            << r.invalid_genomes << " invalid)\n";
  print_fitness("standard", nc::tune::TuneGenome::standard(cfg.baseline_k),
                r.standard_report);
  print_fitness("freq-directed", r.frequency_directed,
                r.frequency_directed_report);
  print_fitness("winner", r.best, r.best_report);
  for (const nc::tune::GenerationTrace& t : r.trace)
    std::cout << "  gen " << t.generation << ": best " << t.best_score
              << ", mean " << t.mean_valid_score << ", invalid "
              << t.invalid << '\n';

  if (args.has("out")) {
    std::ofstream out(args.require("out"));
    if (!out) throw std::runtime_error("cannot write " + args.get("out"));
    out << r.best.to_json();
    std::cout << "genome -> " << args.get("out") << '\n';
  }
  if (args.has("json")) {
    nc::report::Json doc = nc::report::Json::object();
    doc["seed"] = cfg.seed;
    doc["generations"] = std::uint64_t{cfg.generations};
    doc["population"] = std::uint64_t{cfg.population};
    doc["weights_cr"] = cfg.weights.cr;
    doc["weights_tat"] = cfg.weights.tat;
    doc["weights_gates"] = cfg.weights.gates;
    doc["p"] = std::uint64_t{cfg.weights.p};
    doc["evaluations"] = std::uint64_t{r.evaluations};
    doc["invalid_genomes"] = std::uint64_t{r.invalid_genomes};
    doc["winner"] = genome_json(r.best);
    doc["winner_fitness"] = fitness_json(r.best_report);
    doc["standard_fitness"] = fitness_json(r.standard_report);
    doc["freq_directed_fitness"] = fitness_json(r.frequency_directed_report);
    nc::report::Json trace = nc::report::Json::array();
    for (const nc::tune::GenerationTrace& t : r.trace) {
      nc::report::Json g = nc::report::Json::object();
      g["generation"] = std::uint64_t{t.generation};
      g["best_score"] = t.best_score;
      g["mean_valid_score"] = t.mean_valid_score;
      g["invalid"] = std::uint64_t{t.invalid};
      trace.push_back(std::move(g));
    }
    doc["trace"] = std::move(trace);
    nc::report::write_json_file(args.require("json"), doc);
  }
  return 0;
}

int cmd_rtl(const Args& args) {
  const std::size_t k = args.get_count("k", 8);
  nc::codec::CodewordTable table = nc::codec::CodewordTable::standard();
  if (args.has("freq-directed")) {
    // Tune the codeword tree to a training test set.
    const TestSet td = load_tests(args.require("in"));
    table = nc::codec::NineCoded::tuned_for(td.flatten(), k).table();
  }
  nc::rtl::VerilogOptions options;
  options.module_name = args.get("module", "ninec_decoder");
  const std::string source =
      nc::rtl::generate_decoder_verilog(table, k, options);
  std::ofstream out(args.require("out"));
  if (!out) throw std::runtime_error("cannot write " + args.get("out"));
  out << source;
  std::cout << "wrote " << options.module_name << " (K=" << k << ") -> "
            << args.get("out") << '\n';
  if (args.has("testbench")) {
    std::ofstream tb(args.get("testbench"));
    if (!tb) throw std::runtime_error("cannot write " + args.get("testbench"));
    tb << nc::rtl::generate_decoder_testbench(table, k, options.module_name);
    std::cout << "wrote testbench -> " << args.get("testbench") << '\n';
  }
  return 0;
}

int cmd_session(const Args& args) {
  const nc::circuit::Netlist nl =
      nc::circuit::load_bench_file(args.require("bench"));
  const TestSet tests = load_tests(args.require("tests"));
  nc::decomp::SessionConfig cfg;
  cfg.block_size = args.get_count("k", 8);
  cfg.p = static_cast<unsigned>(args.get_count("p", 8));
  cfg.codec_impl = parse_codec_impl(args);
  cfg.jobs = args.get_count("jobs", 1, std::size_t{0});
  cfg.shards = args.get_count("shards", 0, std::size_t{0});
  if (args.has("inject") || args.has("retry") || args.has("abort-after")) {
    nc::decomp::ResilienceConfig res;
    if (args.has("inject"))
      res.channel = nc::decomp::ChannelConfig::parse(args.get("inject"));
    res.retry.max_retries = static_cast<unsigned>(args.get_size("retry", 3));
    if (args.has("abort-after"))
      res.retry.abort_after = args.get_size("abort-after", 0);
    cfg.resilience = res;
  }
  const nc::decomp::SessionResult r =
      nc::decomp::run_test_session(nl, tests, cfg);
  std::cout << "ATE session: " << r.patterns_applied << " patterns, "
            << r.ate_bits << " compressed bits streamed, " << r.soc_cycles
            << " SoC cycles (scan-in + capture)\n";
  if (cfg.resilience.has_value()) {
    std::cout << "channel: " << cfg.resilience->channel.to_string() << '\n'
              << "  corrupted transmissions: "
              << r.channel.corrupted_transmissions << " of "
              << r.channel.transmissions << " (detected "
              << r.corruptions_detected << ", X-masked "
              << r.corruptions_undetected << ")\n"
              << "  retries: " << r.retries << " across "
              << r.patterns_retried << " patterns, wasted ATE bits "
              << r.wasted_ate_bits << '\n';
    if (r.patterns_unrecovered > 0)
      std::cout << "  UNRECOVERED patterns (retry budget exhausted): "
                << r.patterns_unrecovered << (r.aborted ? ", session ABORTED"
                                                        : "")
                << '\n';
  }
  const char* verdict =
      r.device_passes()
          ? "PASS"
          : (r.failing_patterns > 0 ? "FAIL (response mismatch!)"
                                    : "NO VERDICT (channel failure)");
  std::cout << "fault-free device: " << verdict << '\n';
  return r.device_passes() ? 0 : 1;
}

int cmd_fleet(const Args& args) {
  const nc::circuit::Netlist nl =
      nc::circuit::load_bench_file(args.require("bench"));
  const TestSet tests = load_tests(args.require("tests"));

  nc::decomp::FleetConfig cfg;
  cfg.block_size = args.get_count("k", 8);
  cfg.p = static_cast<unsigned>(args.get_count("p", 8));
  cfg.codec_impl = parse_codec_impl(args);
  cfg.retry.max_retries = static_cast<unsigned>(args.get_size("retry", 3));
  if (args.has("abort-after"))
    cfg.retry.abort_after = args.get_count("abort-after", 1);
  cfg.breaker.open_after =
      static_cast<unsigned>(args.get_count("breaker-threshold", 3));
  cfg.breaker.probe_after = args.get_size("breaker-probe", 2);
  cfg.watchdog_steps = args.get_size("watchdog-steps", 0);  // 0 = auto
  cfg.batch_patterns = args.get_count("batch", 8);
  cfg.jobs = args.get_count("jobs", 1, std::size_t{0});
  cfg.seed = args.get_size("seed", 1);
  cfg.checkpoint_path = args.get("checkpoint");
  cfg.resume = args.has("resume");
  if (args.has("stop-after"))
    cfg.stop_after_batches = args.get_count("stop-after", 1);
  if (cfg.resume && cfg.checkpoint_path.empty())
    usage("--resume needs --checkpoint");

  // One profile per device; a ';'-separated --inject list is assigned
  // round-robin, so heterogeneous fleets are one flag away.
  const std::size_t devices = args.get_count("devices", 4);
  std::vector<nc::decomp::DeviceProfile> profiles(devices);
  if (args.has("inject")) {
    std::vector<nc::decomp::ChannelConfig> specs;
    const std::string& list = args.get("inject");
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t split = std::min(list.find(';', start), list.size());
      specs.push_back(
          nc::decomp::ChannelConfig::parse(list.substr(start, split - start)));
      start = split + 1;
    }
    for (std::size_t i = 0; i < devices; ++i)
      profiles[i].channel = specs[i % specs.size()];
  }

  const nc::decomp::FleetResult r =
      nc::decomp::run_fleet(nl, tests, cfg, profiles);

  std::cout << "fleet: " << devices << " devices x "
            << tests.pattern_count() << " patterns, " << r.batches_run
            << " batches (" << cfg.batch_patterns << " patterns each)"
            << (r.resumed ? ", resumed" : "")
            << (r.complete ? "" : ", STOPPED EARLY") << '\n';
  for (std::size_t i = 0; i < r.devices.size(); ++i) {
    const nc::decomp::DeviceResult& d = r.devices[i];
    std::cout << "  device " << i << ": "
              << nc::decomp::to_string(d.verdict) << " (breaker "
              << nc::decomp::to_string(d.breaker) << ", "
              << d.session.failing_patterns << " failing, "
              << d.session.retries << " retries, " << d.watchdog_trips
              << " watchdog trips, " << d.patterns_skipped << " skipped)\n";
  }
  std::cout << "verdicts: " << r.passed << " passed, " << r.failed
            << " failed, " << r.quarantined << " quarantined, " << r.aborted
            << " aborted\n"
            << "channel: " << r.ate_bits << " ATE bits applied, "
            << r.wasted_ate_bits << " wasted, " << r.retries << " retries, "
            << r.watchdog_trips << " watchdog trips, " << r.patterns_skipped
            << " patterns skipped\n";
  if (!cfg.checkpoint_path.empty())
    std::cout << "journal: " << cfg.checkpoint_path << " ("
              << r.checkpoints_written << " checkpoints written)\n";
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(nc::decomp::fleet_fingerprint(r)));
  std::cout << "fingerprint: " << fp << '\n';
  return r.complete && r.passed == devices ? 0 : 1;
}

int cmd_serve(const Args& args) {
  nc::serve::ServerConfig cfg;
  cfg.codec_impl = parse_codec_impl(args);
  cfg.worker_threads =
      args.get_count("workers", cfg.worker_threads, std::size_t{0});
  cfg.queue_capacity = args.get_count("queue", cfg.queue_capacity);
  cfg.inflight_cap = args.get_count("inflight", cfg.inflight_cap);
  cfg.cache_capacity = args.get_size("cache-bytes", cfg.cache_capacity);
  cfg.store_dir = args.get("store");
  cfg.store_segment_bytes =
      args.get_size("store-segment-bytes", cfg.store_segment_bytes);
  cfg.store_shards =
      static_cast<unsigned>(args.get_size("store-shards", cfg.store_shards));
  cfg.store_parity =
      static_cast<unsigned>(args.get_size("store-parity", cfg.store_parity));
  cfg.store_stripe_threshold =
      args.get_size("store-stripe-bytes", cfg.store_stripe_threshold);
  cfg.store_scrub_interval_ms = static_cast<std::uint32_t>(
      args.get_size("store-scrub-ms", cfg.store_scrub_interval_ms));
  cfg.default_deadline_ms = static_cast<std::uint32_t>(
      args.get_size("request-deadline-ms", cfg.default_deadline_ms));
  cfg.write_deadline = std::chrono::milliseconds(args.get_size(
      "write-deadline-ms",
      static_cast<std::size_t>(cfg.write_deadline.count())));
  cfg.min_progress_bps = args.get_size("min-progress-bps", cfg.min_progress_bps);
  cfg.idle_timeout = std::chrono::milliseconds(args.get_size(
      "idle-timeout-ms", static_cast<std::size_t>(cfg.idle_timeout.count())));
  const std::size_t duration_ms = args.get_size("duration-ms", 0);

  nc::serve::UnixListener listener(args.require("socket"));
  nc::serve::Server server(cfg);
  std::cout << "serving on " << listener.path()
            << (duration_ms > 0
                    ? " for " + std::to_string(duration_ms) + " ms"
                    : std::string(" until killed"))
            << '\n';
  const auto start = std::chrono::steady_clock::now();
  while (duration_ms == 0 ||
         std::chrono::steady_clock::now() - start <
             std::chrono::milliseconds(duration_ms)) {
    auto conn = listener.accept(std::chrono::milliseconds(200));
    if (conn) server.serve(std::move(conn));
  }
  server.stop();
  const nc::serve::CacheStats cache = server.cache_stats();
  if (server.has_sharded_store()) {
    const nc::store::ShardedStats ss = server.sharded_store_stats();
    std::cout << nc::serve::metrics_json(server.metrics_snapshot(), &cache,
                                         nullptr, &ss)
                     .dump(2)
              << '\n';
  } else if (server.has_store()) {
    const nc::store::StoreStats ss = server.store_stats();
    std::cout << nc::serve::metrics_json(server.metrics_snapshot(), &cache,
                                         &ss)
                     .dump(2)
              << '\n';
  } else {
    std::cout << nc::serve::metrics_json(server.metrics_snapshot(), &cache)
                     .dump(2)
              << '\n';
  }
  return 0;
}

nc::report::Json store_stats_json(const nc::store::StoreStats& s) {
  nc::report::Json j = nc::report::Json::object();
  j["records"] = s.records;
  j["segments"] = s.segments;
  j["live_bytes"] = s.live_bytes;
  j["dead_bytes"] = s.dead_bytes;
  j["garbage_ratio"] = s.garbage_ratio();
  j["manifest_bytes"] = s.manifest_bytes;
  j["tombstones"] = s.tombstones;
  j["recovered"] = s.recovered;
  j["replayed_records"] = s.replayed_records;
  j["torn_bytes_discarded"] = s.torn_bytes_discarded;
  j["dropped_at_open"] = s.dropped_at_open;
  j["compactions"] = s.compactions;
  j["records_moved"] = s.records_moved;
  j["bytes_reclaimed"] = s.bytes_reclaimed;
  return j;
}

nc::report::Json fsck_report_json(const nc::store::FsckReport& r) {
  nc::report::Json j = nc::report::Json::object();
  j["clean"] = r.clean;
  j["repaired"] = r.repaired;
  j["segments_scanned"] = r.segments_scanned;
  j["records_scanned"] = r.records_scanned;
  j["corrupt_records"] = r.corrupt_records;
  j["torn_segment_bytes"] = r.torn_segment_bytes;
  j["dangling_entries"] = r.dangling_entries;
  j["orphan_records"] = r.orphan_records;
  j["orphans_recovered"] = r.orphans_recovered;
  j["duplicate_records"] = r.duplicate_records;
  j["stray_segments"] = r.stray_segments;
  j["stray_segments_removed"] = r.stray_segments_removed;
  return j;
}

double parse_min_garbage(const Args& args) {
  return args.has("min-garbage")
             ? parse_ratio("min-garbage", args.require("min-garbage"))
             : 0.0;
}

nc::report::Json scrub_report_json(const nc::store::ScrubReport& r) {
  nc::report::Json j = nc::report::Json::object();
  j["full_redundancy"] = r.full_redundancy;
  j["artifacts"] = r.artifacts;
  j["strips_checked"] = r.strips_checked;
  j["heads_missing"] = r.heads_missing;
  j["heads_repaired"] = r.heads_repaired;
  j["strips_missing"] = r.strips_missing;
  j["strips_repaired"] = r.strips_repaired;
  j["copies_missing"] = r.copies_missing;
  j["copies_repaired"] = r.copies_repaired;
  j["unrecoverable"] = r.unrecoverable;
  j["orphan_strips"] = r.orphan_strips;
  j["shards_down"] = r.shards_down;
  return j;
}

int cmd_store_sharded(const std::string& action, const Args& args,
                      const std::string& dir) {
  nc::store::ShardedStoreConfig cfg;
  cfg.dir = dir;
  cfg.shards = 0;  // adopt the geometry recorded in the marker
  cfg.auto_compact = false;  // the CLI acts only when told to
  nc::store::ShardedStore store(cfg);

  if (action == "stats") {
    nc::report::Json j = nc::report::Json::object();
    j["shards"] = std::uint64_t{store.shards()};
    j["parity"] = std::uint64_t{store.parity()};
    nc::report::Json per_shard = nc::report::Json::object();
    for (unsigned s = 0; s < store.shards(); ++s) {
      try {
        per_shard[nc::store::ShardedStore::shard_dir_name(s)] =
            store_stats_json(store.shard_stats(s));
      } catch (const std::exception& e) {
        nc::report::Json down = nc::report::Json::object();
        down["unreachable"] = std::string(e.what());
        per_shard[nc::store::ShardedStore::shard_dir_name(s)] =
            std::move(down);
      }
    }
    j["per_shard"] = std::move(per_shard);
    std::cout << j.dump(2) << '\n';
    return 0;
  }
  if (action == "fsck") {
    const bool repair = !args.has("scan-only");
    nc::report::Json per_shard = nc::report::Json::object();
    bool all_clean = true;
    for (unsigned s = 0; s < store.shards(); ++s) {
      const std::string name = nc::store::ShardedStore::shard_dir_name(s);
      try {
        nc::store::FsckReport report = store.fsck_shard(s, repair);
        if (repair && report.repaired) {
          const nc::store::FsckReport after = store.fsck_shard(s, false);
          nc::report::Json j = nc::report::Json::object();
          j["repair_pass"] = fsck_report_json(report);
          j["verify_pass"] = fsck_report_json(after);
          per_shard[name] = std::move(j);
          all_clean = all_clean && after.clean;
        } else {
          per_shard[name] = fsck_report_json(report);
          all_clean = all_clean && report.clean;
        }
      } catch (const std::exception& e) {
        nc::report::Json down = nc::report::Json::object();
        down["unreachable"] = std::string(e.what());
        per_shard[name] = std::move(down);
        all_clean = false;
      }
    }
    nc::report::Json j = nc::report::Json::object();
    j["clean"] = all_clean;
    j["per_shard"] = std::move(per_shard);
    std::cout << j.dump(2) << '\n';
    return all_clean ? 0 : 1;
  }
  if (action == "compact") {
    const std::uint64_t reclaimed = store.compact(parse_min_garbage(args));
    nc::report::Json j = nc::report::Json::object();
    j["bytes_reclaimed"] = reclaimed;
    std::cout << j.dump(2) << '\n';
    return 0;
  }
  if (action == "scrub") {
    const nc::store::ScrubReport report = store.scrub();
    std::cout << scrub_report_json(report).dump(2) << '\n';
    return report.full_redundancy && report.unrecoverable == 0 ? 0 : 1;
  }
  usage("unknown store action '" + action +
        "' (fsck|stats|compact|scrub)");
}

int cmd_store(const std::string& action, const Args& args) {
  const std::string dir = args.require("dir");
  if (nc::store::ShardedStore::is_sharded_dir(dir))
    return cmd_store_sharded(action, args, dir);
  if (action == "scrub")
    usage("scrub needs a sharded store (no sharded.nc9x marker in " + dir +
          ")");
  nc::store::StoreConfig cfg;
  cfg.dir = dir;
  cfg.auto_compact = false;  // the CLI acts only when told to
  nc::store::Store store(cfg);

  if (action == "stats") {
    std::cout << store_stats_json(store.stats()).dump(2) << '\n';
    return 0;
  }
  if (action == "fsck") {
    const bool repair = !args.has("scan-only");
    nc::store::FsckReport report = store.fsck(repair);
    if (repair && report.repaired) {
      // Rescan so the verdict (and the exit code) reflects the repaired
      // state, not the damage that was just fixed.
      const nc::store::FsckReport after = store.fsck(false);
      nc::report::Json j = nc::report::Json::object();
      j["repair_pass"] = fsck_report_json(report);
      j["verify_pass"] = fsck_report_json(after);
      std::cout << j.dump(2) << '\n';
      return after.clean ? 0 : 1;
    }
    std::cout << fsck_report_json(report).dump(2) << '\n';
    return report.clean ? 0 : 1;
  }
  if (action == "compact") {
    const std::uint64_t reclaimed = store.compact(parse_min_garbage(args));
    nc::report::Json j = nc::report::Json::object();
    j["bytes_reclaimed"] = reclaimed;
    j["stats"] = store_stats_json(store.stats());
    std::cout << j.dump(2) << '\n';
    return 0;
  }
  usage("unknown store action '" + action + "' (fsck|stats|compact|scrub)");
}

int cmd_loadgen(const Args& args) {
  const std::string socket = args.require("socket");
  nc::serve::LoadgenConfig cfg;
  cfg.clients = args.get_count("clients", cfg.clients);
  cfg.requests_per_client =
      args.get_count("requests", cfg.requests_per_client);
  cfg.pipeline = args.get_count("pipeline", cfg.pipeline);
  cfg.distinct = args.get_count("distinct", cfg.distinct);
  cfg.patterns = args.get_count("patterns", cfg.patterns);
  cfg.width = args.get_count("width", cfg.width);
  cfg.seed = args.get_size("seed", cfg.seed);
  cfg.fault_period = args.get_size("fault-period", cfg.fault_period);
  if (args.has("inject"))
    cfg.channel = nc::decomp::ChannelConfig::parse(args.require("inject"));
  cfg.deadline = std::chrono::milliseconds(
      args.get_count("deadline-ms", 30000));
  cfg.request_deadline_ms = static_cast<std::uint32_t>(
      args.get_size("request-deadline-ms", cfg.request_deadline_ms));
  cfg.hedge_after = std::chrono::milliseconds(args.get_size(
      "hedge-after-ms", static_cast<std::size_t>(cfg.hedge_after.count())));
  cfg.retry_budget = args.get_size("retry-budget", cfg.retry_budget);
  cfg.signature_checks = args.get_size("signatures", cfg.signature_checks);
  cfg.signature_x_density =
      args.get_ratio("signature-x", cfg.signature_x_density);

  std::function<std::unique_ptr<nc::serve::ByteStream>()> connect =
      [&socket] { return nc::serve::connect_unix(socket); };
  if (args.has("chaos")) {
    const std::vector<nc::serve::ChaosRule> rules =
        nc::serve::parse_chaos_spec(args.require("chaos"));
    // Each connection (including reconnects) gets its own seed so chaos
    // schedules differ per connection but the run stays reproducible.
    auto chaos_seq = std::make_shared<std::atomic<std::uint64_t>>(0);
    const std::uint64_t base_seed = cfg.seed;
    connect = [&socket, rules, chaos_seq, base_seed] {
      return std::make_unique<nc::serve::ChaosStream>(
          nc::serve::connect_unix(socket), rules,
          base_seed * 48271 + chaos_seq->fetch_add(1));
    };
  }

  const nc::serve::LoadgenStats stats = nc::serve::run_loadgen(cfg, connect);

  std::cout << stats.requests << " requests resolved in " << stats.seconds
            << " s (" << stats.throughput_rps() << " req/s)\n"
            << "rejections " << stats.typed_rejections << " ("
            << stats.deadline_rejections << " deadline), retransmits "
            << stats.retransmits << ", corrupted sends "
            << stats.corrupted_sends << ", frame errors "
            << stats.frame_errors << '\n'
            << "hedges " << stats.hedges << " (" << stats.hedge_wins
            << " won), reconnects " << stats.reconnects << '\n'
            << "byte mismatches " << stats.byte_mismatches << ", duplicates "
            << stats.duplicates << ", unresolved " << stats.unresolved
            << '\n';
  if (cfg.signature_checks > 0)
    std::cout << "signature unknowns " << stats.signature_unknowns << '\n';
  if (args.has("json")) {
    nc::report::Json doc = nc::report::Json::object();
    doc["requests"] = stats.requests;
    doc["throughput_rps"] = stats.throughput_rps();
    doc["typed_rejections"] = stats.typed_rejections;
    doc["retransmits"] = stats.retransmits;
    doc["corrupted_sends"] = stats.corrupted_sends;
    doc["frame_errors"] = stats.frame_errors;
    doc["byte_mismatches"] = stats.byte_mismatches;
    doc["duplicates"] = stats.duplicates;
    doc["unresolved"] = stats.unresolved;
    doc["hedges"] = stats.hedges;
    doc["hedge_wins"] = stats.hedge_wins;
    doc["reconnects"] = stats.reconnects;
    doc["deadline_rejections"] = stats.deadline_rejections;
    doc["signature_unknowns"] = stats.signature_unknowns;
    doc["clean"] = stats.clean();
    nc::report::write_json_file(args.require("json"), doc);
  }
  const bool all_resolved =
      stats.requests == cfg.clients * cfg.requests_per_client;
  std::cout << "clean: " << (stats.clean() && all_resolved ? "yes" : "NO")
            << '\n';
  return stats.clean() && all_resolved ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "store") {
    // `store` takes a positional action before the flags.
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0)
      usage("store needs an action: ninec store <fsck|stats|compact|scrub>");
    const std::string action = argv[2];
    const Args store_args(argc, argv, 3);
    try {
      return cmd_store(action, store_args);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
  }
  const Args args(argc, argv, 2);
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "circuit") return cmd_circuit(args);
    if (command == "atpg") return cmd_atpg(args);
    if (command == "roundtrip") return cmd_roundtrip(args);
    if (command == "compress") return cmd_compress(args);
    if (command == "decompress") return cmd_decompress(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "tune") return cmd_tune(args);
    if (command == "rtl") return cmd_rtl(args);
    if (command == "session") return cmd_session(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "loadgen") return cmd_loadgen(args);
    if (command == "help" || command == "--help") usage();
    usage("unknown command " + command);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
