#!/usr/bin/env bash
# CI entry point: run the tier-1 verify three ways -- a plain build, an
# ASan/UBSan-instrumented one, and a ThreadSanitizer build that runs the
# concurrency suites (thread pool, sharded parallel codec, container
# format, fleet session manager, decoder fuzz/watchdog, the serve layer:
# frame protocol, artifact cache, concurrent server + loadgen, deadline /
# slow-client timing, retrying client, chaos transport soak, and the
# persistent artifact store: crash-recovery matrices plus compaction racing
# concurrent readers, the erasure-coded sharded tier: degraded reads,
# breaker probes and scrub repair under fault injection, the fault-parallel
# response analyzer of the X-compaction layer, and the tune subsystem's
# parallel fitness evaluation with its memoizing evaluator) to catch data
# races in the parallel pipeline and the service.
#
#   tools/check.sh [--plain-only|--sanitize-only|--tsan-only]
#
# Exits nonzero if any configure, build, or ctest step fails.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

run_suite() {
  local builddir="$1"
  shift
  cmake -B "$builddir" -S "$repo" "$@"
  cmake --build "$builddir" -j "$jobs"
  ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
}

if [[ "$mode" != "--sanitize-only" && "$mode" != "--tsan-only" ]]; then
  echo "== tier-1 verify: plain =="
  run_suite "$repo/build"
fi

if [[ "$mode" != "--plain-only" && "$mode" != "--tsan-only" ]]; then
  echo "== tier-1 verify: address,undefined sanitizers =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  run_suite "$repo/build-san" -DNC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if [[ "$mode" != "--plain-only" && "$mode" != "--sanitize-only" ]]; then
  # TSan is incompatible with ASan/UBSan in one binary, so it gets its own
  # build tree; only the suites that actually spawn threads are worth the
  # ~10x TSan slowdown.
  echo "== concurrency verify: thread sanitizer =="
  builddir="$repo/build-tsan"
  cmake -B "$builddir" -S "$repo" -DNC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$builddir" -j "$jobs" \
    --target thread_pool_test parallel_pipeline_test sharded_format_test \
    fleet_test decoder_fuzz_test codec_diff_fuzz_test frame_fuzz_test \
    serve_cache_test serve_server_test serve_timing_test serve_client_test \
    serve_chaos_test retry_test crc_test hash_test \
    tune_test tune_roundtrip_test \
    erasure_test store_test store_crash_test store_erasure_test \
    compact_test
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$builddir" --output-on-failure -j "$jobs" \
    -R 'ThreadPool|Parallel|ParallelPipeline|ShardedFormat|Fleet|DecoderFuzz|CodecDiffFuzz|Watchdog|FrameFuzz|ServeServer|ServeTiming|RetryingClient|ChaosSpec|ChaosStream|ChaosSoak|ArtifactCache|CacheKey|RetryHelper|Crc|Fnv128|Mix64|Tune|Genome|ErasureCodec|Store|Analyzer|Signature'
fi

echo "== check.sh: all suites green =="
