#!/usr/bin/env bash
# CI entry point: run the tier-1 verify twice -- a plain build and an
# ASan/UBSan-instrumented one (CMake option NC_SANITIZE).
#
#   tools/check.sh [--plain-only|--sanitize-only]
#
# Exits nonzero if any configure, build, or ctest step fails.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

run_suite() {
  local builddir="$1"
  shift
  cmake -B "$builddir" -S "$repo" "$@"
  cmake --build "$builddir" -j "$jobs"
  ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
}

if [[ "$mode" != "--sanitize-only" ]]; then
  echo "== tier-1 verify: plain =="
  run_suite "$repo/build"
fi

if [[ "$mode" != "--plain-only" ]]; then
  echo "== tier-1 verify: address,undefined sanitizers =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  run_suite "$repo/build-san" -DNC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "== check.sh: all suites green =="
