# Empty dependencies file for bench_table2_cr.
# This may be replaced when dependencies are built.
