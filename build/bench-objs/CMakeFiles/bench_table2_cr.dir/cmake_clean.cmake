file(REMOVE_RECURSE
  "../bench/bench_table2_cr"
  "../bench/bench_table2_cr.pdb"
  "CMakeFiles/bench_table2_cr.dir/bench_table2_cr.cpp.o"
  "CMakeFiles/bench_table2_cr.dir/bench_table2_cr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
