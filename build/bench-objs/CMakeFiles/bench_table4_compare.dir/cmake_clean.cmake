file(REMOVE_RECURSE
  "../bench/bench_table4_compare"
  "../bench/bench_table4_compare.pdb"
  "CMakeFiles/bench_table4_compare.dir/bench_table4_compare.cpp.o"
  "CMakeFiles/bench_table4_compare.dir/bench_table4_compare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
