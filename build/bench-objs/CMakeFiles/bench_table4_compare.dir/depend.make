# Empty dependencies file for bench_table4_compare.
# This may be replaced when dependencies are built.
