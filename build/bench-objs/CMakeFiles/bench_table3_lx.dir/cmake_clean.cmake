file(REMOVE_RECURSE
  "../bench/bench_table3_lx"
  "../bench/bench_table3_lx.pdb"
  "CMakeFiles/bench_table3_lx.dir/bench_table3_lx.cpp.o"
  "CMakeFiles/bench_table3_lx.dir/bench_table3_lx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
