file(REMOVE_RECURSE
  "../bench/bench_table7_freq"
  "../bench/bench_table7_freq.pdb"
  "CMakeFiles/bench_table7_freq.dir/bench_table7_freq.cpp.o"
  "CMakeFiles/bench_table7_freq.dir/bench_table7_freq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
