# Empty dependencies file for bench_table7_freq.
# This may be replaced when dependencies are built.
