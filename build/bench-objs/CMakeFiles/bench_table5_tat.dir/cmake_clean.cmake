file(REMOVE_RECURSE
  "../bench/bench_table5_tat"
  "../bench/bench_table5_tat.pdb"
  "CMakeFiles/bench_table5_tat.dir/bench_table5_tat.cpp.o"
  "CMakeFiles/bench_table5_tat.dir/bench_table5_tat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
