file(REMOVE_RECURSE
  "../bench/bench_table8_ibm"
  "../bench/bench_table8_ibm.pdb"
  "CMakeFiles/bench_table8_ibm.dir/bench_table8_ibm.cpp.o"
  "CMakeFiles/bench_table8_ibm.dir/bench_table8_ibm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_ibm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
