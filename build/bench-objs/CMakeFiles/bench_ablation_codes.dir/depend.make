# Empty dependencies file for bench_ablation_codes.
# This may be replaced when dependencies are built.
