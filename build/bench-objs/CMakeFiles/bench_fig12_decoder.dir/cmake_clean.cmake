file(REMOVE_RECURSE
  "../bench/bench_fig12_decoder"
  "../bench/bench_fig12_decoder.pdb"
  "CMakeFiles/bench_fig12_decoder.dir/bench_fig12_decoder.cpp.o"
  "CMakeFiles/bench_fig12_decoder.dir/bench_fig12_decoder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
