# Empty dependencies file for bench_fig12_decoder.
# This may be replaced when dependencies are built.
