# Empty compiler generated dependencies file for bench_ablation_leftover.
# This may be replaced when dependencies are built.
