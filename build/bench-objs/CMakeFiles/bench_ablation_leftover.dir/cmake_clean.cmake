file(REMOVE_RECURSE
  "../bench/bench_ablation_leftover"
  "../bench/bench_ablation_leftover.pdb"
  "CMakeFiles/bench_ablation_leftover.dir/bench_ablation_leftover.cpp.o"
  "CMakeFiles/bench_ablation_leftover.dir/bench_ablation_leftover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leftover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
