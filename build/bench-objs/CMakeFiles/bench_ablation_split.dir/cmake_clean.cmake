file(REMOVE_RECURSE
  "../bench/bench_ablation_split"
  "../bench/bench_ablation_split.pdb"
  "CMakeFiles/bench_ablation_split.dir/bench_ablation_split.cpp.o"
  "CMakeFiles/bench_ablation_split.dir/bench_ablation_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
