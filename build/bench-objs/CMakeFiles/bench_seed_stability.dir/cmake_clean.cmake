file(REMOVE_RECURSE
  "../bench/bench_seed_stability"
  "../bench/bench_seed_stability.pdb"
  "CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cpp.o"
  "CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
