file(REMOVE_RECURSE
  "../bench/bench_ablation_xfill"
  "../bench/bench_ablation_xfill.pdb"
  "CMakeFiles/bench_ablation_xfill.dir/bench_ablation_xfill.cpp.o"
  "CMakeFiles/bench_ablation_xfill.dir/bench_ablation_xfill.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
