# Empty dependencies file for bench_ablation_xfill.
# This may be replaced when dependencies are built.
