file(REMOVE_RECURSE
  "../bench/bench_table1_code"
  "../bench/bench_table1_code.pdb"
  "CMakeFiles/bench_table1_code.dir/bench_table1_code.cpp.o"
  "CMakeFiles/bench_table1_code.dir/bench_table1_code.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
