# Empty dependencies file for bench_table1_code.
# This may be replaced when dependencies are built.
