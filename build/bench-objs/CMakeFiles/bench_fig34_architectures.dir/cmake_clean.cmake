file(REMOVE_RECURSE
  "../bench/bench_fig34_architectures"
  "../bench/bench_fig34_architectures.pdb"
  "CMakeFiles/bench_fig34_architectures.dir/bench_fig34_architectures.cpp.o"
  "CMakeFiles/bench_fig34_architectures.dir/bench_fig34_architectures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
