file(REMOVE_RECURSE
  "../bench/bench_ablation_diff"
  "../bench/bench_ablation_diff.pdb"
  "CMakeFiles/bench_ablation_diff.dir/bench_ablation_diff.cpp.o"
  "CMakeFiles/bench_ablation_diff.dir/bench_ablation_diff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
