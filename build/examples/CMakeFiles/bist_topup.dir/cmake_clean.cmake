file(REMOVE_RECURSE
  "CMakeFiles/bist_topup.dir/bist_topup.cpp.o"
  "CMakeFiles/bist_topup.dir/bist_topup.cpp.o.d"
  "bist_topup"
  "bist_topup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_topup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
