# Empty dependencies file for bist_topup.
# This may be replaced when dependencies are built.
