file(REMOVE_RECURSE
  "CMakeFiles/lowpower_fill.dir/lowpower_fill.cpp.o"
  "CMakeFiles/lowpower_fill.dir/lowpower_fill.cpp.o.d"
  "lowpower_fill"
  "lowpower_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowpower_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
