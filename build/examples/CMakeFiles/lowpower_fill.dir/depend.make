# Empty dependencies file for lowpower_fill.
# This may be replaced when dependencies are built.
