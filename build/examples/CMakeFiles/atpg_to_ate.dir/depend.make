# Empty dependencies file for atpg_to_ate.
# This may be replaced when dependencies are built.
