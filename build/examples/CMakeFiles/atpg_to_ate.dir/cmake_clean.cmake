file(REMOVE_RECURSE
  "CMakeFiles/atpg_to_ate.dir/atpg_to_ate.cpp.o"
  "CMakeFiles/atpg_to_ate.dir/atpg_to_ate.cpp.o.d"
  "atpg_to_ate"
  "atpg_to_ate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_to_ate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
