# Empty compiler generated dependencies file for rpct_multiscan.
# This may be replaced when dependencies are built.
