file(REMOVE_RECURSE
  "CMakeFiles/rpct_multiscan.dir/rpct_multiscan.cpp.o"
  "CMakeFiles/rpct_multiscan.dir/rpct_multiscan.cpp.o.d"
  "rpct_multiscan"
  "rpct_multiscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpct_multiscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
