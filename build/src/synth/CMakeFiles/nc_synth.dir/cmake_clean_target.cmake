file(REMOVE_RECURSE
  "libnc_synth.a"
)
