file(REMOVE_RECURSE
  "CMakeFiles/nc_synth.dir/code_synth.cpp.o"
  "CMakeFiles/nc_synth.dir/code_synth.cpp.o.d"
  "CMakeFiles/nc_synth.dir/fsm_synth.cpp.o"
  "CMakeFiles/nc_synth.dir/fsm_synth.cpp.o.d"
  "CMakeFiles/nc_synth.dir/qm.cpp.o"
  "CMakeFiles/nc_synth.dir/qm.cpp.o.d"
  "libnc_synth.a"
  "libnc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
