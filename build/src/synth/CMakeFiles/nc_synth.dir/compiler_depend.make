# Empty compiler generated dependencies file for nc_synth.
# This may be replaced when dependencies are built.
