file(REMOVE_RECURSE
  "CMakeFiles/nc_sim.dir/fault.cpp.o"
  "CMakeFiles/nc_sim.dir/fault.cpp.o.d"
  "CMakeFiles/nc_sim.dir/fault_sim.cpp.o"
  "CMakeFiles/nc_sim.dir/fault_sim.cpp.o.d"
  "CMakeFiles/nc_sim.dir/lfsr.cpp.o"
  "CMakeFiles/nc_sim.dir/lfsr.cpp.o.d"
  "CMakeFiles/nc_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/nc_sim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/nc_sim.dir/misr.cpp.o"
  "CMakeFiles/nc_sim.dir/misr.cpp.o.d"
  "libnc_sim.a"
  "libnc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
