# Empty compiler generated dependencies file for nc_sim.
# This may be replaced when dependencies are built.
