
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/nc_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/nc_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/fault_sim.cpp" "src/sim/CMakeFiles/nc_sim.dir/fault_sim.cpp.o" "gcc" "src/sim/CMakeFiles/nc_sim.dir/fault_sim.cpp.o.d"
  "/root/repo/src/sim/lfsr.cpp" "src/sim/CMakeFiles/nc_sim.dir/lfsr.cpp.o" "gcc" "src/sim/CMakeFiles/nc_sim.dir/lfsr.cpp.o.d"
  "/root/repo/src/sim/logic_sim.cpp" "src/sim/CMakeFiles/nc_sim.dir/logic_sim.cpp.o" "gcc" "src/sim/CMakeFiles/nc_sim.dir/logic_sim.cpp.o.d"
  "/root/repo/src/sim/misr.cpp" "src/sim/CMakeFiles/nc_sim.dir/misr.cpp.o" "gcc" "src/sim/CMakeFiles/nc_sim.dir/misr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/nc_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/nc_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
