file(REMOVE_RECURSE
  "libnc_sim.a"
)
