# Empty compiler generated dependencies file for nc_baselines.
# This may be replaced when dependencies are built.
