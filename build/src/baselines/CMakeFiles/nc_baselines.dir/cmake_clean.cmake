file(REMOVE_RECURSE
  "CMakeFiles/nc_baselines.dir/dictionary.cpp.o"
  "CMakeFiles/nc_baselines.dir/dictionary.cpp.o.d"
  "CMakeFiles/nc_baselines.dir/fdr.cpp.o"
  "CMakeFiles/nc_baselines.dir/fdr.cpp.o.d"
  "CMakeFiles/nc_baselines.dir/golomb.cpp.o"
  "CMakeFiles/nc_baselines.dir/golomb.cpp.o.d"
  "CMakeFiles/nc_baselines.dir/lzw.cpp.o"
  "CMakeFiles/nc_baselines.dir/lzw.cpp.o.d"
  "CMakeFiles/nc_baselines.dir/mtc.cpp.o"
  "CMakeFiles/nc_baselines.dir/mtc.cpp.o.d"
  "CMakeFiles/nc_baselines.dir/selective_huffman.cpp.o"
  "CMakeFiles/nc_baselines.dir/selective_huffman.cpp.o.d"
  "CMakeFiles/nc_baselines.dir/vihc.cpp.o"
  "CMakeFiles/nc_baselines.dir/vihc.cpp.o.d"
  "libnc_baselines.a"
  "libnc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
