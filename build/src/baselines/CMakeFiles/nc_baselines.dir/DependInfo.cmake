
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dictionary.cpp" "src/baselines/CMakeFiles/nc_baselines.dir/dictionary.cpp.o" "gcc" "src/baselines/CMakeFiles/nc_baselines.dir/dictionary.cpp.o.d"
  "/root/repo/src/baselines/fdr.cpp" "src/baselines/CMakeFiles/nc_baselines.dir/fdr.cpp.o" "gcc" "src/baselines/CMakeFiles/nc_baselines.dir/fdr.cpp.o.d"
  "/root/repo/src/baselines/golomb.cpp" "src/baselines/CMakeFiles/nc_baselines.dir/golomb.cpp.o" "gcc" "src/baselines/CMakeFiles/nc_baselines.dir/golomb.cpp.o.d"
  "/root/repo/src/baselines/lzw.cpp" "src/baselines/CMakeFiles/nc_baselines.dir/lzw.cpp.o" "gcc" "src/baselines/CMakeFiles/nc_baselines.dir/lzw.cpp.o.d"
  "/root/repo/src/baselines/mtc.cpp" "src/baselines/CMakeFiles/nc_baselines.dir/mtc.cpp.o" "gcc" "src/baselines/CMakeFiles/nc_baselines.dir/mtc.cpp.o.d"
  "/root/repo/src/baselines/selective_huffman.cpp" "src/baselines/CMakeFiles/nc_baselines.dir/selective_huffman.cpp.o" "gcc" "src/baselines/CMakeFiles/nc_baselines.dir/selective_huffman.cpp.o.d"
  "/root/repo/src/baselines/vihc.cpp" "src/baselines/CMakeFiles/nc_baselines.dir/vihc.cpp.o" "gcc" "src/baselines/CMakeFiles/nc_baselines.dir/vihc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/nc_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/nc_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
