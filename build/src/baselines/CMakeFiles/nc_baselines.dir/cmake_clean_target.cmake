file(REMOVE_RECURSE
  "libnc_baselines.a"
)
