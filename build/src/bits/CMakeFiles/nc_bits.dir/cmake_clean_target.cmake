file(REMOVE_RECURSE
  "libnc_bits.a"
)
