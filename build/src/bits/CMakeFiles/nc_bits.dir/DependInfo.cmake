
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bits/huffman.cpp" "src/bits/CMakeFiles/nc_bits.dir/huffman.cpp.o" "gcc" "src/bits/CMakeFiles/nc_bits.dir/huffman.cpp.o.d"
  "/root/repo/src/bits/serialize.cpp" "src/bits/CMakeFiles/nc_bits.dir/serialize.cpp.o" "gcc" "src/bits/CMakeFiles/nc_bits.dir/serialize.cpp.o.d"
  "/root/repo/src/bits/test_set.cpp" "src/bits/CMakeFiles/nc_bits.dir/test_set.cpp.o" "gcc" "src/bits/CMakeFiles/nc_bits.dir/test_set.cpp.o.d"
  "/root/repo/src/bits/trit_vector.cpp" "src/bits/CMakeFiles/nc_bits.dir/trit_vector.cpp.o" "gcc" "src/bits/CMakeFiles/nc_bits.dir/trit_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
