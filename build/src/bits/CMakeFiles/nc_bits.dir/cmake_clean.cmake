file(REMOVE_RECURSE
  "CMakeFiles/nc_bits.dir/huffman.cpp.o"
  "CMakeFiles/nc_bits.dir/huffman.cpp.o.d"
  "CMakeFiles/nc_bits.dir/serialize.cpp.o"
  "CMakeFiles/nc_bits.dir/serialize.cpp.o.d"
  "CMakeFiles/nc_bits.dir/test_set.cpp.o"
  "CMakeFiles/nc_bits.dir/test_set.cpp.o.d"
  "CMakeFiles/nc_bits.dir/trit_vector.cpp.o"
  "CMakeFiles/nc_bits.dir/trit_vector.cpp.o.d"
  "libnc_bits.a"
  "libnc_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
