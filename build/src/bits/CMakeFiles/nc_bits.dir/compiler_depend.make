# Empty compiler generated dependencies file for nc_bits.
# This may be replaced when dependencies are built.
