# Empty dependencies file for nc_rtl.
# This may be replaced when dependencies are built.
