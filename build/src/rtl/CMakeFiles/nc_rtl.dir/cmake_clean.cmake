file(REMOVE_RECURSE
  "CMakeFiles/nc_rtl.dir/verilog.cpp.o"
  "CMakeFiles/nc_rtl.dir/verilog.cpp.o.d"
  "libnc_rtl.a"
  "libnc_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
