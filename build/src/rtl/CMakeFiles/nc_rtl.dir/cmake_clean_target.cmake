file(REMOVE_RECURSE
  "libnc_rtl.a"
)
