file(REMOVE_RECURSE
  "CMakeFiles/nc_report.dir/table.cpp.o"
  "CMakeFiles/nc_report.dir/table.cpp.o.d"
  "libnc_report.a"
  "libnc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
