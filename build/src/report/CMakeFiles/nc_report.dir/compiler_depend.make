# Empty compiler generated dependencies file for nc_report.
# This may be replaced when dependencies are built.
