file(REMOVE_RECURSE
  "libnc_report.a"
)
