file(REMOVE_RECURSE
  "libnc_codec.a"
)
