# Empty dependencies file for nc_codec.
# This may be replaced when dependencies are built.
