
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/block_class.cpp" "src/codec/CMakeFiles/nc_codec.dir/block_class.cpp.o" "gcc" "src/codec/CMakeFiles/nc_codec.dir/block_class.cpp.o.d"
  "/root/repo/src/codec/codeword_table.cpp" "src/codec/CMakeFiles/nc_codec.dir/codeword_table.cpp.o" "gcc" "src/codec/CMakeFiles/nc_codec.dir/codeword_table.cpp.o.d"
  "/root/repo/src/codec/diff.cpp" "src/codec/CMakeFiles/nc_codec.dir/diff.cpp.o" "gcc" "src/codec/CMakeFiles/nc_codec.dir/diff.cpp.o.d"
  "/root/repo/src/codec/nine_coded.cpp" "src/codec/CMakeFiles/nc_codec.dir/nine_coded.cpp.o" "gcc" "src/codec/CMakeFiles/nc_codec.dir/nine_coded.cpp.o.d"
  "/root/repo/src/codec/pattern_codec.cpp" "src/codec/CMakeFiles/nc_codec.dir/pattern_codec.cpp.o" "gcc" "src/codec/CMakeFiles/nc_codec.dir/pattern_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/nc_bits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
