file(REMOVE_RECURSE
  "CMakeFiles/nc_codec.dir/block_class.cpp.o"
  "CMakeFiles/nc_codec.dir/block_class.cpp.o.d"
  "CMakeFiles/nc_codec.dir/codeword_table.cpp.o"
  "CMakeFiles/nc_codec.dir/codeword_table.cpp.o.d"
  "CMakeFiles/nc_codec.dir/diff.cpp.o"
  "CMakeFiles/nc_codec.dir/diff.cpp.o.d"
  "CMakeFiles/nc_codec.dir/nine_coded.cpp.o"
  "CMakeFiles/nc_codec.dir/nine_coded.cpp.o.d"
  "CMakeFiles/nc_codec.dir/pattern_codec.cpp.o"
  "CMakeFiles/nc_codec.dir/pattern_codec.cpp.o.d"
  "libnc_codec.a"
  "libnc_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
