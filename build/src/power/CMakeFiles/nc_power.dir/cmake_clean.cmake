file(REMOVE_RECURSE
  "CMakeFiles/nc_power.dir/fill.cpp.o"
  "CMakeFiles/nc_power.dir/fill.cpp.o.d"
  "CMakeFiles/nc_power.dir/metrics.cpp.o"
  "CMakeFiles/nc_power.dir/metrics.cpp.o.d"
  "libnc_power.a"
  "libnc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
