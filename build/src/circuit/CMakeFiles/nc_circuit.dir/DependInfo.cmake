
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bench_io.cpp" "src/circuit/CMakeFiles/nc_circuit.dir/bench_io.cpp.o" "gcc" "src/circuit/CMakeFiles/nc_circuit.dir/bench_io.cpp.o.d"
  "/root/repo/src/circuit/generator.cpp" "src/circuit/CMakeFiles/nc_circuit.dir/generator.cpp.o" "gcc" "src/circuit/CMakeFiles/nc_circuit.dir/generator.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/nc_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/nc_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/samples.cpp" "src/circuit/CMakeFiles/nc_circuit.dir/samples.cpp.o" "gcc" "src/circuit/CMakeFiles/nc_circuit.dir/samples.cpp.o.d"
  "/root/repo/src/circuit/scan_chains.cpp" "src/circuit/CMakeFiles/nc_circuit.dir/scan_chains.cpp.o" "gcc" "src/circuit/CMakeFiles/nc_circuit.dir/scan_chains.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/nc_bits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
