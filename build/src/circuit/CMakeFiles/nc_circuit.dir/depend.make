# Empty dependencies file for nc_circuit.
# This may be replaced when dependencies are built.
