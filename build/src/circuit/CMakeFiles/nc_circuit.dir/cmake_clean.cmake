file(REMOVE_RECURSE
  "CMakeFiles/nc_circuit.dir/bench_io.cpp.o"
  "CMakeFiles/nc_circuit.dir/bench_io.cpp.o.d"
  "CMakeFiles/nc_circuit.dir/generator.cpp.o"
  "CMakeFiles/nc_circuit.dir/generator.cpp.o.d"
  "CMakeFiles/nc_circuit.dir/netlist.cpp.o"
  "CMakeFiles/nc_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/nc_circuit.dir/samples.cpp.o"
  "CMakeFiles/nc_circuit.dir/samples.cpp.o.d"
  "CMakeFiles/nc_circuit.dir/scan_chains.cpp.o"
  "CMakeFiles/nc_circuit.dir/scan_chains.cpp.o.d"
  "libnc_circuit.a"
  "libnc_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
