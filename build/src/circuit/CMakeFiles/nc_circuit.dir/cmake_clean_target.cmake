file(REMOVE_RECURSE
  "libnc_circuit.a"
)
