file(REMOVE_RECURSE
  "CMakeFiles/nc_atpg.dir/atpg.cpp.o"
  "CMakeFiles/nc_atpg.dir/atpg.cpp.o.d"
  "CMakeFiles/nc_atpg.dir/oracle.cpp.o"
  "CMakeFiles/nc_atpg.dir/oracle.cpp.o.d"
  "CMakeFiles/nc_atpg.dir/podem.cpp.o"
  "CMakeFiles/nc_atpg.dir/podem.cpp.o.d"
  "libnc_atpg.a"
  "libnc_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
