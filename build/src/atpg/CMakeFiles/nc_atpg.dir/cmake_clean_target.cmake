file(REMOVE_RECURSE
  "libnc_atpg.a"
)
