# Empty compiler generated dependencies file for nc_atpg.
# This may be replaced when dependencies are built.
