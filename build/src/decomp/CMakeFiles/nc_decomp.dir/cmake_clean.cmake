file(REMOVE_RECURSE
  "CMakeFiles/nc_decomp.dir/ate_session.cpp.o"
  "CMakeFiles/nc_decomp.dir/ate_session.cpp.o.d"
  "CMakeFiles/nc_decomp.dir/decoder_fsm.cpp.o"
  "CMakeFiles/nc_decomp.dir/decoder_fsm.cpp.o.d"
  "CMakeFiles/nc_decomp.dir/multi_scan.cpp.o"
  "CMakeFiles/nc_decomp.dir/multi_scan.cpp.o.d"
  "CMakeFiles/nc_decomp.dir/programmable.cpp.o"
  "CMakeFiles/nc_decomp.dir/programmable.cpp.o.d"
  "CMakeFiles/nc_decomp.dir/single_scan.cpp.o"
  "CMakeFiles/nc_decomp.dir/single_scan.cpp.o.d"
  "CMakeFiles/nc_decomp.dir/timing.cpp.o"
  "CMakeFiles/nc_decomp.dir/timing.cpp.o.d"
  "libnc_decomp.a"
  "libnc_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
