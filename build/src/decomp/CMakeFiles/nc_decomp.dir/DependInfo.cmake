
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/ate_session.cpp" "src/decomp/CMakeFiles/nc_decomp.dir/ate_session.cpp.o" "gcc" "src/decomp/CMakeFiles/nc_decomp.dir/ate_session.cpp.o.d"
  "/root/repo/src/decomp/decoder_fsm.cpp" "src/decomp/CMakeFiles/nc_decomp.dir/decoder_fsm.cpp.o" "gcc" "src/decomp/CMakeFiles/nc_decomp.dir/decoder_fsm.cpp.o.d"
  "/root/repo/src/decomp/multi_scan.cpp" "src/decomp/CMakeFiles/nc_decomp.dir/multi_scan.cpp.o" "gcc" "src/decomp/CMakeFiles/nc_decomp.dir/multi_scan.cpp.o.d"
  "/root/repo/src/decomp/programmable.cpp" "src/decomp/CMakeFiles/nc_decomp.dir/programmable.cpp.o" "gcc" "src/decomp/CMakeFiles/nc_decomp.dir/programmable.cpp.o.d"
  "/root/repo/src/decomp/single_scan.cpp" "src/decomp/CMakeFiles/nc_decomp.dir/single_scan.cpp.o" "gcc" "src/decomp/CMakeFiles/nc_decomp.dir/single_scan.cpp.o.d"
  "/root/repo/src/decomp/timing.cpp" "src/decomp/CMakeFiles/nc_decomp.dir/timing.cpp.o" "gcc" "src/decomp/CMakeFiles/nc_decomp.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/nc_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/nc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/nc_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
