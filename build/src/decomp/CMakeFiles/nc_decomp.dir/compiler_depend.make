# Empty compiler generated dependencies file for nc_decomp.
# This may be replaced when dependencies are built.
