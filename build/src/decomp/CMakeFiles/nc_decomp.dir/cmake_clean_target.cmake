file(REMOVE_RECURSE
  "libnc_decomp.a"
)
