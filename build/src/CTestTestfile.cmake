# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("bits")
subdirs("report")
subdirs("circuit")
subdirs("sim")
subdirs("atpg")
subdirs("codec")
subdirs("baselines")
subdirs("decomp")
subdirs("synth")
subdirs("gen")
subdirs("power")
subdirs("rtl")
