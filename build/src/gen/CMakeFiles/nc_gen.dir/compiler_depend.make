# Empty compiler generated dependencies file for nc_gen.
# This may be replaced when dependencies are built.
