file(REMOVE_RECURSE
  "CMakeFiles/nc_gen.dir/cube_gen.cpp.o"
  "CMakeFiles/nc_gen.dir/cube_gen.cpp.o.d"
  "CMakeFiles/nc_gen.dir/profiles.cpp.o"
  "CMakeFiles/nc_gen.dir/profiles.cpp.o.d"
  "libnc_gen.a"
  "libnc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
