file(REMOVE_RECURSE
  "libnc_gen.a"
)
