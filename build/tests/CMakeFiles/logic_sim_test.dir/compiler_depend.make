# Empty compiler generated dependencies file for logic_sim_test.
# This may be replaced when dependencies are built.
