# Empty dependencies file for test_set_test.
# This may be replaced when dependencies are built.
