file(REMOVE_RECURSE
  "CMakeFiles/test_set_test.dir/test_set_test.cpp.o"
  "CMakeFiles/test_set_test.dir/test_set_test.cpp.o.d"
  "test_set_test"
  "test_set_test.pdb"
  "test_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
