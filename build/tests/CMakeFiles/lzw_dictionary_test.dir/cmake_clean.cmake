file(REMOVE_RECURSE
  "CMakeFiles/lzw_dictionary_test.dir/lzw_dictionary_test.cpp.o"
  "CMakeFiles/lzw_dictionary_test.dir/lzw_dictionary_test.cpp.o.d"
  "lzw_dictionary_test"
  "lzw_dictionary_test.pdb"
  "lzw_dictionary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzw_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
