# Empty dependencies file for lzw_dictionary_test.
# This may be replaced when dependencies are built.
