file(REMOVE_RECURSE
  "CMakeFiles/trit_test.dir/trit_test.cpp.o"
  "CMakeFiles/trit_test.dir/trit_test.cpp.o.d"
  "trit_test"
  "trit_test.pdb"
  "trit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
