file(REMOVE_RECURSE
  "CMakeFiles/pattern_codec_test.dir/pattern_codec_test.cpp.o"
  "CMakeFiles/pattern_codec_test.dir/pattern_codec_test.cpp.o.d"
  "pattern_codec_test"
  "pattern_codec_test.pdb"
  "pattern_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
