# Empty compiler generated dependencies file for multi_scan_test.
# This may be replaced when dependencies are built.
