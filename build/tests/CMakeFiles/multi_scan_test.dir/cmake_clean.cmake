file(REMOVE_RECURSE
  "CMakeFiles/multi_scan_test.dir/multi_scan_test.cpp.o"
  "CMakeFiles/multi_scan_test.dir/multi_scan_test.cpp.o.d"
  "multi_scan_test"
  "multi_scan_test.pdb"
  "multi_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
