file(REMOVE_RECURSE
  "CMakeFiles/nine_coded_property_test.dir/nine_coded_property_test.cpp.o"
  "CMakeFiles/nine_coded_property_test.dir/nine_coded_property_test.cpp.o.d"
  "nine_coded_property_test"
  "nine_coded_property_test.pdb"
  "nine_coded_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nine_coded_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
