# Empty dependencies file for nine_coded_property_test.
# This may be replaced when dependencies are built.
