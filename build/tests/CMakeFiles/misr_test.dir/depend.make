# Empty dependencies file for misr_test.
# This may be replaced when dependencies are built.
