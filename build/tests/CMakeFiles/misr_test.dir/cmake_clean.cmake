file(REMOVE_RECURSE
  "CMakeFiles/misr_test.dir/misr_test.cpp.o"
  "CMakeFiles/misr_test.dir/misr_test.cpp.o.d"
  "misr_test"
  "misr_test.pdb"
  "misr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
