file(REMOVE_RECURSE
  "CMakeFiles/code_synth_test.dir/code_synth_test.cpp.o"
  "CMakeFiles/code_synth_test.dir/code_synth_test.cpp.o.d"
  "code_synth_test"
  "code_synth_test.pdb"
  "code_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
