# Empty dependencies file for code_synth_test.
# This may be replaced when dependencies are built.
