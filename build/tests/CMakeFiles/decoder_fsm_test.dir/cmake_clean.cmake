file(REMOVE_RECURSE
  "CMakeFiles/decoder_fsm_test.dir/decoder_fsm_test.cpp.o"
  "CMakeFiles/decoder_fsm_test.dir/decoder_fsm_test.cpp.o.d"
  "decoder_fsm_test"
  "decoder_fsm_test.pdb"
  "decoder_fsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_fsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
