# Empty compiler generated dependencies file for decoder_fsm_test.
# This may be replaced when dependencies are built.
