file(REMOVE_RECURSE
  "CMakeFiles/block_class_test.dir/block_class_test.cpp.o"
  "CMakeFiles/block_class_test.dir/block_class_test.cpp.o.d"
  "block_class_test"
  "block_class_test.pdb"
  "block_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
