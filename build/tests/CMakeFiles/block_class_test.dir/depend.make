# Empty dependencies file for block_class_test.
# This may be replaced when dependencies are built.
