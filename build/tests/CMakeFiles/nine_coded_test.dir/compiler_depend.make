# Empty compiler generated dependencies file for nine_coded_test.
# This may be replaced when dependencies are built.
