file(REMOVE_RECURSE
  "CMakeFiles/ate_session_test.dir/ate_session_test.cpp.o"
  "CMakeFiles/ate_session_test.dir/ate_session_test.cpp.o.d"
  "ate_session_test"
  "ate_session_test.pdb"
  "ate_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ate_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
