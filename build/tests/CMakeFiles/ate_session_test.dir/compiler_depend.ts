# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ate_session_test.
