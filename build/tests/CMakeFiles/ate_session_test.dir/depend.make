# Empty dependencies file for ate_session_test.
# This may be replaced when dependencies are built.
