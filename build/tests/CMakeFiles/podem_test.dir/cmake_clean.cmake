file(REMOVE_RECURSE
  "CMakeFiles/podem_test.dir/podem_test.cpp.o"
  "CMakeFiles/podem_test.dir/podem_test.cpp.o.d"
  "podem_test"
  "podem_test.pdb"
  "podem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/podem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
