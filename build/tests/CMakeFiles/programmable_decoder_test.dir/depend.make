# Empty dependencies file for programmable_decoder_test.
# This may be replaced when dependencies are built.
