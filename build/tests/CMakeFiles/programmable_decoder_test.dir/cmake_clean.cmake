file(REMOVE_RECURSE
  "CMakeFiles/programmable_decoder_test.dir/programmable_decoder_test.cpp.o"
  "CMakeFiles/programmable_decoder_test.dir/programmable_decoder_test.cpp.o.d"
  "programmable_decoder_test"
  "programmable_decoder_test.pdb"
  "programmable_decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programmable_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
