# Empty dependencies file for codeword_table_test.
# This may be replaced when dependencies are built.
