file(REMOVE_RECURSE
  "CMakeFiles/codeword_table_test.dir/codeword_table_test.cpp.o"
  "CMakeFiles/codeword_table_test.dir/codeword_table_test.cpp.o.d"
  "codeword_table_test"
  "codeword_table_test.pdb"
  "codeword_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codeword_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
