file(REMOVE_RECURSE
  "CMakeFiles/trit_vector_test.dir/trit_vector_test.cpp.o"
  "CMakeFiles/trit_vector_test.dir/trit_vector_test.cpp.o.d"
  "trit_vector_test"
  "trit_vector_test.pdb"
  "trit_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trit_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
