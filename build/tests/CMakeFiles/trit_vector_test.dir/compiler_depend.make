# Empty compiler generated dependencies file for trit_vector_test.
# This may be replaced when dependencies are built.
