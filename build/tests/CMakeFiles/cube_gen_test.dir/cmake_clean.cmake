file(REMOVE_RECURSE
  "CMakeFiles/cube_gen_test.dir/cube_gen_test.cpp.o"
  "CMakeFiles/cube_gen_test.dir/cube_gen_test.cpp.o.d"
  "cube_gen_test"
  "cube_gen_test.pdb"
  "cube_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
