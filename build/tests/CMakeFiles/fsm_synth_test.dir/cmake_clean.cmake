file(REMOVE_RECURSE
  "CMakeFiles/fsm_synth_test.dir/fsm_synth_test.cpp.o"
  "CMakeFiles/fsm_synth_test.dir/fsm_synth_test.cpp.o.d"
  "fsm_synth_test"
  "fsm_synth_test.pdb"
  "fsm_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
