# Empty dependencies file for fsm_synth_test.
# This may be replaced when dependencies are built.
