# Empty dependencies file for single_scan_test.
# This may be replaced when dependencies are built.
