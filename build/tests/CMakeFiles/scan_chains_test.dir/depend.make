# Empty dependencies file for scan_chains_test.
# This may be replaced when dependencies are built.
