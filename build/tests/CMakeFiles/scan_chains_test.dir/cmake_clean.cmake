file(REMOVE_RECURSE
  "CMakeFiles/scan_chains_test.dir/scan_chains_test.cpp.o"
  "CMakeFiles/scan_chains_test.dir/scan_chains_test.cpp.o.d"
  "scan_chains_test"
  "scan_chains_test.pdb"
  "scan_chains_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_chains_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
