
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ninec.cpp" "tools/CMakeFiles/ninec.dir/ninec.cpp.o" "gcc" "tools/CMakeFiles/ninec.dir/ninec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atpg/CMakeFiles/nc_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/nc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/nc_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/nc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/nc_report.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/nc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/nc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/bits/CMakeFiles/nc_bits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
