# Empty dependencies file for ninec.
# This may be replaced when dependencies are built.
