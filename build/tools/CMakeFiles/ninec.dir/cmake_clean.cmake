file(REMOVE_RECURSE
  "CMakeFiles/ninec.dir/ninec.cpp.o"
  "CMakeFiles/ninec.dir/ninec.cpp.o.d"
  "ninec"
  "ninec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ninec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
